"""Deliberately broken protocol artifacts: one per lint rule.

Each builder clones a real generated pairing and injects exactly the
defect its rule is designed to catch -- an unhandled request class, an
unreachable compound state, pruning switched off, an early-ack
translation row, and so on.  The self-tests (and ``repro lint
--self-test``) lint every fixture and assert its rule fires, proving
the linter would catch the defect *statically*, before any simulation.

The clones are deep copies: the generator memoizes its artifacts, so
mutating a generated ``CompoundProtocol`` in place would poison every
later consumer in the process.
"""

from __future__ import annotations

import copy
import dataclasses

from repro.core.generator import CompoundProtocol, generate
from repro.core.translation import TranslationRow

#: The pairing most fixtures are derived from.
DEFAULT_PAIR = ("MESI", "CXL")


def fresh_compound(local: str = "MESI", global_: str = "CXL") -> CompoundProtocol:
    """A private deep copy of a generated pairing, safe to mutate."""
    return copy.deepcopy(generate(local, global_))


def _replace_row(compound: CompoundProtocol, message: str, state, **changes):
    """Swap one translation row for a mutated copy (rows are frozen)."""
    for index, row in enumerate(compound.rows):
        if row.message == message and row.state == state:
            compound.rows[index] = dataclasses.replace(row, **changes)
            return compound.rows[index]
    raise LookupError(f"no row {message} @ {state} in {compound.name}")


def unhandled_request_class() -> CompoundProtocol:
    """C001: the up table loses its (write, S) Rule-I decision."""
    compound = fresh_compound()
    del compound.up_table[("write", "S")]
    return compound


def dead_table_row() -> CompoundProtocol:
    """C002: a translation row keyed on the unreachable (M, I) state."""
    compound = fresh_compound()
    compound.rows.append(TranslationRow(
        compound.global_.wire["inv"], ("M", "I"), None,
        "Rsp to CXL Dir", ("I", "I")))
    return compound


def lost_interleaving() -> CompoundProtocol:
    """R001: the closure 'forgets' every (M, E) state it should reach."""
    compound = fresh_compound()
    compound.reachable = {
        state for state in compound.reachable if state[:2] != ("M", "E")}
    compound.transitions = [
        (state, event, nxt) for (state, event, nxt) in compound.transitions
        if state[:2] != ("M", "E") and nxt[:2] != ("M", "E")]
    return compound


def orphan_state() -> CompoundProtocol:
    """R002: a state claimed reachable that no transition path justifies."""
    compound = fresh_compound()
    compound.reachable.add(("S", "E", True))
    return compound


def dangling_transition() -> CompoundProtocol:
    """R003: a transition into a state missing from the reachable set."""
    compound = fresh_compound()
    compound.transitions.append(
        (("I", "I", False), "local-read", ("S", "S", True)))
    return compound


def pruning_disabled() -> CompoundProtocol:
    """F001: forbidden-state pruning switched off entirely."""
    compound = fresh_compound()
    compound.forbidden = set()
    return compound


def over_pruned() -> CompoundProtocol:
    """F002: RCC pairing forbidding (S, I) despite the RCC exemption."""
    compound = fresh_compound("RCC", "CXL")
    compound.forbidden = {("S", "I")}
    return compound


def forbidden_reachable_leak() -> CompoundProtocol:
    """F003: a reachable pair stamped forbidden -- pruning is unsound."""
    compound = fresh_compound()
    compound.forbidden.add(("S", "S"))
    return compound


def malformed_transient() -> CompoundProtocol:
    """P001: a next state using a letter outside the stable alphabets."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("M", "M"),
                 next_state=("MZ^A", "MZ^A"))
    return compound


def stall_cycle() -> CompoundProtocol:
    """P002: a transient whose only completion lands in a forbidden state."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("M", "M"),
                 next_state=("IM^A", "MI^A"))  # completes into (M, I)
    return compound


def early_origin_effect() -> CompoundProtocol:
    """N001: a crossing row answers the CXL directory before the recall."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("M", "M"),
                 action="Rsp to CXL Dir")
    return compound


def nesting_disabled() -> CompoundProtocol:
    """N002: a crossing row closes into a stable state (no nesting)."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("M", "M"),
                 next_state=("I", "I"))
    return compound


def wrong_completion() -> CompoundProtocol:
    """N003: an invalidation recall that waits for data instead of acks."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("M", "M"),
                 next_state=("MI^D", "MI^D"))
    return compound


def spurious_nesting() -> CompoundProtocol:
    """N004: a non-crossing row parks the line in a transient state."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("I", "S"),
                 next_state=("II^A", "II^A"))
    return compound


def wait_for_cycle() -> CompoundProtocol:
    """D001: two transients waiting on each other, no legal completion.

    Both states complete into the forbidden (M, I) -- so neither has a
    completion edge -- and the injected rows hand the line back and
    forth between them forever.
    """
    compound = fresh_compound()
    first = ("IM^A", "MI^A")
    second = ("SM^A", "MI^A")
    inv = compound.global_.wire["inv"]
    _replace_row(compound, inv, ("M", "M"), next_state=first)
    compound.rows.append(TranslationRow(
        inv, first, None, "Rsp to CXL Dir", second))
    compound.rows.append(TranslationRow(
        inv, second, None, "Rsp to CXL Dir", first))
    return compound


def stuck_terminal() -> CompoundProtocol:
    """D002: a transient with a forbidden completion and no outgoing rows."""
    compound = fresh_compound()
    _replace_row(compound, compound.global_.wire["inv"], ("S", "S"),
                 next_state=("IM^D", "MS^D"))  # completes into (M, S)
    return compound


#: rule id -> builder for the fixture that must trigger it.
FIXTURES = {
    "C001": unhandled_request_class,
    "C002": dead_table_row,
    "R001": lost_interleaving,
    "R002": orphan_state,
    "R003": dangling_transition,
    "F001": pruning_disabled,
    "F002": over_pruned,
    "F003": forbidden_reachable_leak,
    "P001": malformed_transient,
    "P002": stall_cycle,
    "D001": wait_for_cycle,
    "D002": stuck_terminal,
    "N001": early_origin_effect,
    "N002": nesting_disabled,
    "N003": wrong_completion,
    "N004": spurious_nesting,
}


def self_test(linter=None) -> dict:
    """Lint every fixture; rule id -> True when its rule fired.

    Used by ``repro lint --self-test`` and the test suite to prove each
    rule actually catches its injected defect.
    """
    from repro.analysis.linter import ProtocolLinter

    linter = linter or ProtocolLinter()
    results = {}
    for rule_id, builder in FIXTURES.items():
        report = linter.lint(builder())
        results[rule_id] = report.has_rule(rule_id)
    return results
