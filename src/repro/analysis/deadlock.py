"""Deadlock pass: transient states must never wait on each other.

The progress pass asks "can this transient *eventually* complete?";
this pass diagnoses the two static shapes that make the answer no in
the most dangerous way:

- **D001 (wait-for cycle)** -- a set of transient compound states whose
  table and completion edges form a cycle with no escape to a stable
  legal state.  At runtime each state hands the line to the next while
  Rule II keeps it blocked: the coherence analogue of a lock cycle, and
  exactly the shape Murphi-style checkers report as deadlock.
- **D002 (stuck terminal)** -- a transient state with *no* outbound
  edge at all: its completion target is forbidden (or does not parse)
  and no translation row is keyed on it, so once entered the line can
  never move again, whatever messages arrive.

Both rules are strictly static -- they read the translation table the
generator emitted, never the simulator -- and both are sharper
sub-diagnoses of P002: a P002 finding says stability is unreachable, a
D00x finding says *why* (a cycle, or a dead end).
"""

from __future__ import annotations

from collections import deque

from repro.analysis.findings import ERROR, Finding, LintPass
from repro.analysis.progress import parse_state


def _graph(compound):
    """Build the transient-state graph the progress pass also walks.

    Returns ``(nodes, edges, stable_ok)``: parsed components per state,
    successor sets (table rows plus legal implied completion edges), and
    the fully-stable non-forbidden sink states.
    """
    nodes = {}
    edges = {}
    for row in compound.rows:
        for state in (row.state, row.next_state):
            if state not in nodes:
                nodes[state] = parse_state(state, compound)
        edges.setdefault(row.state, set()).add(row.next_state)
    stable_ok = set()
    for state, (lc, gc) in sorted(nodes.items()):
        if lc is None or gc is None:
            continue
        if lc.stable and gc.stable:
            if state not in compound.forbidden:
                stable_ok.add(state)
            continue
        target = (lc.target, gc.target)
        if target in compound.forbidden:
            continue  # completing would be illegal: no edge
        edges.setdefault(state, set()).add(target)
        if target not in nodes:
            nodes[target] = parse_state(target, compound)
            if all(c is not None and c.stable for c in nodes[target]):
                stable_ok.add(target)
    return nodes, edges, stable_ok


def _transients(nodes):
    """The parseable, not-fully-stable states of the graph."""
    out = set()
    for state, (lc, gc) in nodes.items():
        if lc is not None and gc is not None and not (lc.stable and gc.stable):
            out.add(state)
    return out


def _sccs(vertices, edges):
    """Tarjan's strongly connected components, iteratively.

    Only edges between ``vertices`` are followed; components are
    yielded as sorted tuples in a deterministic order.
    """
    index = {}
    low = {}
    on_stack = set()
    stack = []
    components = []
    counter = [0]

    for root in sorted(vertices):
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in vertices:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[vertex] = min(low[vertex], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[vertex])
            if low[vertex] == index[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                components.append(tuple(sorted(component)))
    return sorted(components)


def _escapes(component, edges, stable_ok) -> bool:
    """BFS from the component: does any path reach a stable legal state?"""
    members = set(component)
    seen = set(members)
    frontier = deque(component)
    while frontier:
        state = frontier.popleft()
        if state in stable_ok:
            return True
        for nxt in edges.get(state, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


class DeadlockPass(LintPass):
    """Flag wait-for cycles and stuck terminals among transient states."""

    name = "deadlock"
    rules = {
        "D001": "wait-for cycle: transient states cycling through each "
                "other with no escape to a stable legal state (static "
                "deadlock)",
        "D002": "stuck terminal: transient state with no legal completion "
                "edge and no outgoing translation row",
    }

    def run(self, compound) -> list:
        """Build the transient graph; report its cycles and dead ends."""
        findings = []
        nodes, edges, stable_ok = _graph(compound)
        transients = _transients(nodes)

        for component in _sccs(transients, edges):
            cyclic = (len(component) > 1
                      or component[0] in edges.get(component[0], ()))
            if not cyclic or _escapes(component, edges, stable_ok):
                continue
            cycle = " <-> ".join("/".join(state) for state in component)
            findings.append(Finding(
                "D001", ERROR,
                f"{compound.name} {component[0]}",
                f"transient states form a wait-for cycle ({cycle}) with no "
                "escape to a stable legal state: once entered, the line "
                "blocks forever (static deadlock)",
            ))

        for state in sorted(nodes):
            lc, gc = nodes[state]
            if (lc is not None and gc is not None
                    and lc.stable and gc.stable):
                continue
            if edges.get(state):
                continue  # some edge (row or legal completion) leads out
            if lc is None or gc is None:
                why = "its annotation does not parse"
            else:
                why = (f"its completion target {(lc.target, gc.target)} is "
                       "forbidden")
            findings.append(Finding(
                "D002", ERROR,
                f"{compound.name} {state}",
                f"transient state has no outbound edge: {why} and no "
                "translation row is keyed on it -- once entered, no message "
                "can ever move the line (stuck terminal)",
            ))
        return findings
