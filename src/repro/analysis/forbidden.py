"""Forbidden-state pass: generator and checker cross-validate.

The generator prunes compound states with ``_forbidden_states`` (its
Rule-II by-product: inclusion and permission escalation).  The
verification layer states the same vocabulary independently in
:func:`repro.verify.invariants.derive_forbidden_pairs`.  This pass
diffs the two derivations, so neither side can silently drift:

- a derived-forbidden pair the generator does *not* forbid means the
  pruning was weakened (e.g. disabled in a fixture spec) -- the runtime
  invariant monitor would be the only thing left to catch (M, I);
- a generator-forbidden pair the derivation allows means the generator
  over-prunes and silently amputates legal protocol behaviour;
- a forbidden pair inside the reachable set is an outright soundness
  leak (the generator asserts this at synthesis; the linter re-checks
  it on the artifact, which may have been tampered with or gone stale).
"""

from __future__ import annotations

from repro.analysis.findings import ERROR, Finding, LintPass
from repro.verify.invariants import derive_forbidden_pairs


class ForbiddenStatePass(LintPass):
    """Diff the generator's pruning against the independent derivation."""

    name = "forbidden"
    rules = {
        "F001": "under-pruned: independently derived forbidden pair is "
                "missing from the generator's forbidden set",
        "F002": "over-pruned: generator forbids a pair the independent "
                "derivation allows",
        "F003": "forbidden pair leaked into the reachable set",
    }

    def run(self, compound) -> list:
        """Audit the forbidden set from both directions, then for leaks."""
        derived = derive_forbidden_pairs(
            compound.local.variant,
            compound.global_.variant,
            summaries=compound.local.summaries(),
        )
        findings = []
        for pair in sorted(derived - compound.forbidden):
            findings.append(Finding(
                "F001", ERROR,
                f"{compound.name} {pair}",
                "inclusion/escalation analysis forbids this pair but the "
                "generator did not prune it: pruning weakened or disabled",
            ))
        for pair in sorted(compound.forbidden - derived):
            findings.append(Finding(
                "F002", ERROR,
                f"{compound.name} {pair}",
                "generator prunes this pair but the independent derivation "
                "allows it: legal behaviour silently amputated",
            ))
        for pair in sorted(compound.forbidden & compound.reachable_pairs()):
            findings.append(Finding(
                "F003", ERROR,
                f"{compound.name} {pair}",
                "pair is both forbidden and reachable: Rule-II pruning is "
                "unsound for this artifact",
            ))
        return findings
