"""Progress pass: transient states must always complete.

The translation table's next states may be *transient* -- ``MI^A`` is
"was M, heading to I, waiting for acks"; the suffix after ``^`` lists
the completion messages still pending (``A`` acks, ``D`` data).  A
transient state completes into its target stable state when those
messages arrive; Rule II keeps the line blocked until then.

Statically, livelock candidates are exactly the transient states from
which no completion path leads back to a *stable, legal* compound state:
a malformed annotation (unknown target letter, empty pending set), or a
completion edge that lands in a forbidden state, leaves the line blocked
forever -- every cycle through that state lacks a completion edge.  This
pass parses every state annotation in the table, builds the transient-
state graph (table edges plus implied completion edges), and searches it
for transients that cannot reach stability.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.findings import ERROR, Finding, LintPass

#: Completion-message letters a pending suffix may contain.
PENDING_LETTERS = frozenset({"A", "D"})


@dataclass(frozen=True)
class Component:
    """One parsed component (local or global side) of a table state."""

    text: str
    stable: bool
    target: str  # stable letter this component settles into
    pending: frozenset  # completion messages awaited (empty if stable)


def parse_component(text: str, alphabet) -> Component | None:
    """Parse one state component against its stable-state alphabet.

    Returns None when the annotation is malformed: an unknown stable
    letter, a transient whose endpoints are not single known letters,
    or a pending suffix that is empty or uses unknown message letters.
    """
    if "^" not in text:
        if text in alphabet:
            return Component(text, stable=True, target=text,
                             pending=frozenset())
        return None
    head, _sep, pending = text.partition("^")
    if len(head) != 2 or head[0] not in alphabet or head[1] not in alphabet:
        return None
    if not pending or not set(pending) <= PENDING_LETTERS:
        return None
    return Component(text, stable=False, target=head[1],
                     pending=frozenset(pending))


def parse_state(state, compound):
    """Parse a compound (local, global) table state into Components.

    Returns ``(local_component, global_component)``; either may be None
    when malformed.
    """
    local_alpha = compound.local.summaries()
    global_alpha = compound.global_.variant.state_names()
    return (parse_component(state[0], local_alpha),
            parse_component(state[1], global_alpha))


class ProgressPass(LintPass):
    """Search the transient-state graph for states that never complete."""

    name = "progress"
    rules = {
        "P001": "malformed transient-state annotation in the translation "
                "table",
        "P002": "stall cycle: transient state with no completion path to "
                "a stable legal state",
    }

    def run(self, compound) -> list:
        """Parse annotations, build the graph, flag non-completing states."""
        findings = []
        nodes = {}  # state pair -> (local Component | None, global | None)
        edges = {}  # state pair -> set of successor state pairs
        for row in compound.rows:
            for state in (row.state, row.next_state):
                if state not in nodes:
                    nodes[state] = parse_state(state, compound)
            edges.setdefault(row.state, set()).add(row.next_state)

        stable_ok = set()  # fully-stable, non-forbidden nodes
        for state, (lc, gc) in sorted(nodes.items()):
            for component, side in ((lc, "local"), (gc, "global")):
                if component is None:
                    findings.append(Finding(
                        "P001", ERROR,
                        f"{compound.name} {state}",
                        f"{side} component of the table state does not parse "
                        "as a stable state or a well-formed transient "
                        "(from/to letters plus a ^A/^D/^AD pending suffix)",
                    ))
            if lc is None or gc is None:
                continue
            if lc.stable and gc.stable:
                if state not in compound.forbidden:
                    stable_ok.add(state)
                continue
            # Implied completion edge: the pending messages arrive and
            # both components settle into their targets.
            target = (lc.target, gc.target)
            if target in compound.forbidden:
                continue  # completing would be illegal: no edge
            edges.setdefault(state, set()).add(target)
            if target not in nodes:
                nodes[target] = parse_state(target, compound)
                if all(c is not None and c.stable for c in nodes[target]):
                    stable_ok.add(target)

        for state, (lc, gc) in sorted(nodes.items()):
            if lc is None or gc is None or (lc.stable and gc.stable):
                continue
            if not self._reaches_stable(state, edges, stable_ok):
                findings.append(Finding(
                    "P002", ERROR,
                    f"{compound.name} {state}",
                    "no completion path from this transient state reaches a "
                    "stable legal state: every cycle through it lacks a "
                    "completion edge (static livelock candidate)",
                ))
        return findings

    @staticmethod
    def _reaches_stable(start, edges, stable_ok) -> bool:
        """BFS: can ``start`` reach any stable legal node?"""
        seen = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            if state in stable_ok:
                return True
            for nxt in edges.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False
