"""Memory-consistency-model engines.

An engine answers two questions for the core model:

- ``can_issue(i, core)`` -- may op ``i`` leave the instruction window now?
- ``fence_done(i, core)`` -- has fence op ``i``'s ordering condition been
  satisfied (a fence completes without touching memory)?

plus two store-buffer parameters (``uses_store_buffer`` and
``sb_parallelism``).  Op statuses live on the core: ``PEND`` (0),
``SCHED`` (1, waiting out its compute gap), ``ISSUED`` (2, in the memory
system), ``RETIRED`` (3, a store sitting in the store buffer) and
``DONE`` (4, globally performed).

The engines implement the models the paper simulates with gem5's
``needsTSO`` flag:

``SC``
    every op waits for all program-order predecessors to complete.

``TSO`` (x86)
    loads are performed in program order; stores retire in order into a
    FIFO store buffer that drains one entry at a time, so loads may
    complete ahead of older stores (store-load reordering) with
    store-to-load forwarding from the buffer; MFENCE/RMW drain the
    buffer.

``WEAK`` (Arm)
    ops issue out of order constrained only by data/address
    dependencies, same-address coherence order, fences (full / ld / st)
    and acquire/release semantics; the store buffer drains several
    entries in parallel.

``RCC``
    WEAK ordering; the acquire/release ops additionally trigger
    self-invalidation/write-flush flows in the RCC cache hierarchy
    (handled by the RCC L1 controller, not here).
"""

from __future__ import annotations

from repro.cpu.isa import (
    FENCE,
    FENCE_FULL,
    FENCE_LD,
    FENCE_ST,
    LOAD,
    LOAD_ACQ,
    RMW,
    STORE,
    STORE_REL,
    Op,
)

PEND = 0
SCHED = 1
ISSUED = 2
RETIRED = 3
DONE = 4


class MCMEngine:
    """Base class; subclasses override the ordering predicates."""

    name = "base"
    uses_store_buffer = True
    sb_parallelism = 1

    def can_issue(self, i: int, core) -> bool:
        """May op ``i`` leave the instruction window now?"""
        raise NotImplementedError

    def fence_done(self, i: int, core) -> bool:
        """Has fence ``i``'s ordering condition been satisfied?"""
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------
    # The scans below start at the core's monotone base pointers: every
    # op before ``done_base()`` is DONE, and every op before
    # ``retired_base()`` already satisfies "reads DONE, writes at least
    # buffered" (only stores can sit in RETIRED).  The timing core
    # provides the pointers; abstract adapters may return 0.

    @staticmethod
    def _deps_done(op: Op, core) -> bool:
        status = core.status
        for d in op.deps:
            if status[d] != DONE:
                return False
        return True

    @staticmethod
    def _all_prior_done(i: int, core) -> bool:
        start = core.done_base() if hasattr(core, "done_base") else 0
        status = core.status
        for j in range(start, i):
            if status[j] != DONE:
                return False
        return True

    @staticmethod
    def _prior_reads_done_writes_retired(i: int, core) -> bool:
        """TSO retire condition: loads performed, stores at least buffered."""
        start = core.retired_base() if hasattr(core, "retired_base") else 0
        ops = core.ops
        status = core.status
        for j in range(start, i):
            op = ops[j]
            if op.is_write and op.kind != RMW:
                if status[j] < RETIRED:
                    return False
            elif status[j] != DONE:
                return False
        return True


class SCEngine(MCMEngine):
    """Sequential consistency: fully serial, no store buffer."""

    name = "SC"
    uses_store_buffer = False

    def can_issue(self, i: int, core) -> bool:
        return self._all_prior_done(i, core)

    def fence_done(self, i: int, core) -> bool:
        return self._all_prior_done(i, core)


class TSOEngine(MCMEngine):
    """x86-TSO: in-order loads, FIFO store buffer, store-load reordering."""

    name = "TSO"
    uses_store_buffer = True
    sb_parallelism = 1

    def can_issue(self, i: int, core) -> bool:
        op = core.ops[i]
        if not self._deps_done(op, core):
            return False
        if op.kind in (LOAD, LOAD_ACQ, STORE, STORE_REL):
            # Loads perform in order; stores retire in order behind them.
            return self._prior_reads_done_writes_retired(i, core)
        if op.kind == RMW:
            # Atomic ops drain the store buffer and serialize.
            return self._all_prior_done(i, core)
        if op.kind == FENCE:
            return True  # fences complete via fence_done
        raise AssertionError(op.kind)

    def fence_done(self, i: int, core) -> bool:
        op = core.ops[i]
        if op.fence_kind == FENCE_FULL:
            # MFENCE: everything performed, store buffer drained.
            return self._all_prior_done(i, core)
        # dmb st / dmb ld are no-ops under TSO: the model already
        # provides those orderings.
        return self._prior_reads_done_writes_retired(i, core)


class WeakEngine(MCMEngine):
    """Arm-style weak ordering with dependencies, fences, acq/rel."""

    name = "WEAK"
    uses_store_buffer = True
    sb_parallelism = 8

    def can_issue(self, i: int, core) -> bool:
        ops = core.ops
        statuses = core.status
        op = ops[i]
        for d in op.deps:
            if statuses[d] != DONE:
                return False
        # Ops before retired_base: fences/acquires/RMWs/reads are DONE
        # and writes >= RETIRED -- every constraint below is satisfied.
        start = core.retired_base() if hasattr(core, "retired_base") else 0
        op_addr = op.addr
        op_is_write = op.is_write
        for j in range(start, i):
            prior = ops[j]
            status = statuses[j]
            kind = prior.kind
            if kind == FENCE:
                if status != DONE:
                    fk = prior.fence_kind
                    if fk == FENCE_FULL or fk == FENCE_LD:
                        # dmb ld orders prior loads with all later ops.
                        return False
                    if fk == FENCE_ST and op_is_write:
                        return False
            elif (kind == LOAD_ACQ or kind == RMW) and status != DONE:
                # Acquire (and acquire-flavoured atomics): no later op
                # may perform before it.
                return False
            elif prior.addr == op_addr:
                # Same-address (coherence) order: prior reads must be
                # done; prior writes must at least be buffered (loads
                # then forward from the store buffer).
                if prior.is_read and status != DONE:
                    return False
                if prior.is_write and status < RETIRED:
                    return False
        if op.kind == STORE_REL:
            # Release: all prior ops performed.
            return self._all_prior_done(i, core)
        # RMW on weak models is acquire-flavoured (ldaxr/stxr): it needs
        # no drain of prior ops, unlike x86's fully-fencing locked ops.
        return True

    def fence_done(self, i: int, core) -> bool:
        op = core.ops[i]
        if op.fence_kind == FENCE_FULL:
            return self._all_prior_done(i, core)
        start = core.done_base() if hasattr(core, "done_base") else 0
        if op.fence_kind == FENCE_ST:
            return all(
                core.status[j] == DONE
                for j in range(start, i)
                if core.ops[j].is_write
            )
        if op.fence_kind == FENCE_LD:
            return all(
                core.status[j] == DONE
                for j in range(start, i)
                if core.ops[j].is_read
            )
        raise AssertionError(op.fence_kind)


class RCCEngine(WeakEngine):
    """Release-consistency cores: WEAK ordering; sync ops hit the RCC cache."""

    name = "RCC"


_ENGINES = {
    "SC": SCEngine,
    "TSO": TSOEngine,
    "WEAK": WeakEngine,
    "RCC": RCCEngine,
}


def make_mcm(name: str) -> MCMEngine:
    """Instantiate the MCM engine for ``name`` (SC/TSO/WEAK/RCC)."""
    try:
        return _ENGINES[name]()
    except KeyError:
        raise ValueError(f"unknown MCM {name!r}") from None
