"""Architecture-neutral memory micro-ops and thread programs.

A thread program is a straight-line sequence of :class:`Op`.  This is
the same abstraction herd7 litmus tests and the paper's workload traces
use: coherence and consistency behaviour is entirely determined by the
sequence of memory operations, fences and their dependencies.

Op kinds
--------
``LOAD``       read a line, write the result to ``reg``.
``STORE``      write ``value`` to a line.
``RMW``        atomic fetch-add (``value`` is the addend); sequentially
               consistent semantics on every MCM (models lock/atomic ops).
``FENCE``      ordering barrier; ``fence_kind`` selects strength:
               ``FULL`` (dmb sy / mfence), ``ST`` (dmb st, store-store),
               ``LD`` (dmb ld, load-load/load-store).
``LOAD_ACQ``   load-acquire: later ops wait for it (and it triggers RCC
               self-invalidation on RCC clusters).
``STORE_REL``  store-release: waits for all prior ops (and flushes RCC
               write-throughs).

``deps`` lists indices of earlier ops whose results feed this op
(address/data dependencies); weak MCMs respect them even without fences.
``gap`` is non-memory compute time (in cycles) charged before the op
becomes eligible, used by the workload generators to pace traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

LOAD = "LOAD"
STORE = "STORE"
RMW = "RMW"
FENCE = "FENCE"
LOAD_ACQ = "LOAD_ACQ"
STORE_REL = "STORE_REL"

FENCE_FULL = "FULL"
FENCE_ST = "ST"
FENCE_LD = "LD"

OP_KINDS = {LOAD, STORE, RMW, FENCE, LOAD_ACQ, STORE_REL}
FENCE_KINDS = {FENCE_FULL, FENCE_ST, FENCE_LD}

#: Kinds that read memory / write memory.
READS = {LOAD, LOAD_ACQ, RMW}
WRITES = {STORE, STORE_REL, RMW}


@dataclass(slots=True)
class Op:
    """One memory micro-op of a thread program."""

    kind: str
    addr: int = 0
    value: int = 0
    reg: str | None = None
    fence_kind: str = FENCE_FULL
    deps: tuple[int, ...] = ()
    gap: int = 0
    #: Derived classification flags; plain fields (not properties) so the
    #: MCM ordering scans pay an attribute load, not a function call.
    is_read: bool = field(init=False, repr=False, compare=False, default=False)
    is_write: bool = field(init=False, repr=False, compare=False, default=False)
    is_fence: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == FENCE and self.fence_kind not in FENCE_KINDS:
            raise ValueError(f"unknown fence kind {self.fence_kind!r}")
        self.is_read = self.kind in READS
        self.is_write = self.kind in WRITES
        self.is_fence = self.kind == FENCE

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == FENCE:
            return f"FENCE.{self.fence_kind}"
        reg = f" -> {self.reg}" if self.reg else ""
        val = f" = {self.value}" if self.is_write else ""
        return f"{self.kind}[0x{self.addr:x}]{val}{reg}"


def load(addr: int, reg: str | None = None, deps: tuple[int, ...] = (), gap: int = 0) -> Op:
    """Build a LOAD micro-op (result written to ``reg``)."""
    return Op(LOAD, addr=addr, reg=reg, deps=deps, gap=gap)


def store(addr: int, value: int, deps: tuple[int, ...] = (), gap: int = 0) -> Op:
    """Build a STORE micro-op."""
    return Op(STORE, addr=addr, value=value, deps=deps, gap=gap)


def rmw(addr: int, addend: int = 1, reg: str | None = None, gap: int = 0) -> Op:
    """Build an atomic fetch-add micro-op (old value to ``reg``)."""
    return Op(RMW, addr=addr, value=addend, reg=reg, gap=gap)


def fence(kind: str = FENCE_FULL) -> Op:
    """Build a fence of the given strength (FULL/ST/LD)."""
    return Op(FENCE, fence_kind=kind)


def load_acquire(addr: int, reg: str | None = None, gap: int = 0) -> Op:
    """Build a load-acquire micro-op."""
    return Op(LOAD_ACQ, addr=addr, reg=reg, gap=gap)


def store_release(addr: int, value: int, gap: int = 0) -> Op:
    """Build a store-release micro-op."""
    return Op(STORE_REL, addr=addr, value=value, gap=gap)


@dataclass
class ThreadProgram:
    """A straight-line program for one hardware thread."""

    name: str
    ops: list[Op] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Op) -> "ThreadProgram":
        """Append an op and return self (builder style)."""
        self.ops.append(op)
        return self

    def validate(self) -> None:
        """Check dependency indices are backwards-only and in range."""
        for i, op in enumerate(self.ops):
            for dep in op.deps:
                if not 0 <= dep < i:
                    raise ValueError(
                        f"{self.name}: op {i} depends on {dep}, "
                        "which is not an earlier op"
                    )
