"""CPU layer: micro-ops, thread programs, MCM engines and the core model.

- :mod:`repro.cpu.isa` -- the architecture-neutral memory micro-ops
  (loads, stores, RMWs, fences, acquire/release) and thread programs.
- :mod:`repro.cpu.mcm` -- memory-consistency-model engines: SC, x86-TSO
  (FIFO store buffer, store-load reordering, forwarding), ARM-style WEAK
  (out-of-order issue bounded by dependencies, fences and same-address
  order) and RCC (WEAK ordering with synchronizing acquire/release).
- :mod:`repro.cpu.core` -- the windowed core timing model that drives a
  thread program against an L1 cache controller.
"""

from repro.cpu.isa import (
    Op,
    ThreadProgram,
    load,
    store,
    rmw,
    fence,
    load_acquire,
    store_release,
)
from repro.cpu.mcm import make_mcm

__all__ = [
    "Op",
    "ThreadProgram",
    "load",
    "store",
    "rmw",
    "fence",
    "load_acquire",
    "store_release",
    "make_mcm",
]
