"""Windowed core timing model.

A :class:`Core` executes one :class:`~repro.cpu.isa.ThreadProgram`
against an L1 cache controller.  It models the parts of an
out-of-order pipeline that matter for consistency and coherence
behaviour:

- a bounded instruction window (ROB) of in-flight memory ops,
- an MCM engine (:mod:`repro.cpu.mcm`) gating when each op may issue,
- a store buffer with configurable drain parallelism (1 for TSO's FIFO
  buffer, several for weak models) and store-to-load forwarding,
- per-op compute gaps to pace workload traffic.

The L1 interface is a single method::

    l1.core_request(kind, addr, value, callback)  # callback(read_value)

which the L1 answers after the appropriate hit/coherence latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu.isa import FENCE, LOAD, LOAD_ACQ, RMW, STORE, STORE_REL, ThreadProgram
from repro.cpu.mcm import DONE, ISSUED, PEND, RETIRED, SCHED, make_mcm
from repro.sim.engine import Engine


@dataclass(slots=True)
class SBEntry:
    """A store sitting in the store buffer."""

    op_index: int
    addr: int
    value: int
    kind: str  # STORE or STORE_REL (RCC release must reach the cache as such)
    draining: bool = False
    prefetched: bool = False


class Core:
    """Drives a thread program; owned by a cluster."""

    def __init__(
        self,
        engine: Engine,
        core_id: str,
        mcm_name: str,
        window: int = 8,
        sb_entries: int = 16,
        cycle: int = 500,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.mcm = make_mcm(mcm_name)
        self.window = window
        self.sb_entries = sb_entries
        self.cycle = cycle
        self.l1 = None  # attached by the cluster builder

        self.ops = []
        self.status: list[int] = []
        self.regs: dict[str, int] = {}
        self.sb: list[SBEntry] = []
        self._prefetched: set[int] = set()
        self._head_ptr = 0
        self._done_ptr = 0
        self._on_done: Callable[[int], None] | None = None
        self._scan_pending = False
        self.finish_time: int | None = None
        self.ops_retired = 0
        self.parked = False  # host left mid-run (repro.scenario churn)

    # ------------------------------------------------------------------
    # Program control.
    # ------------------------------------------------------------------
    def run_program(self, thread: ThreadProgram, on_done: Callable[[int], None]) -> None:
        """Start executing ``thread``; ``on_done(finish_time)`` fires at completion."""
        thread.validate()
        self.ops = thread.ops
        self.status = [PEND] * len(self.ops)
        self.regs = {}
        self.sb = []
        self._prefetched = set()
        self._head_ptr = 0
        self._done_ptr = 0
        self._on_done = on_done
        self.finish_time = None
        self.parked = False
        if not self.ops:
            self.engine.post(0, self._finish)
            return
        self._request_scan()

    def _finish(self) -> None:
        self.finish_time = self.engine.now
        if self._on_done is not None:
            self._on_done(self.engine.now)

    def park(self) -> None:
        """The host thread leaves mid-run (scenario join/leave churn).

        Every op not yet handed to the memory system completes as a
        no-op; in-flight ops (issued requests, scheduled gaps, buffered
        stores) drain through the normal paths so the coherence
        protocol sees a clean departure, after which the regular finish
        condition fires and the thread counts as completed.
        """
        self.parked = True
        status = self.status
        for i, s in enumerate(status):
            if s == PEND:
                status[i] = DONE
        if self.ops and self.finish_time is None:
            self._request_scan()

    # ------------------------------------------------------------------
    # Issue logic.
    # ------------------------------------------------------------------
    def _request_scan(self) -> None:
        if not self._scan_pending:
            self._scan_pending = True
            self.engine.post(0, self._scan)

    def _head(self) -> int:
        # Monotone: statuses only ever increase, so resume the scan.
        i = self._head_ptr
        status = self.status
        n = len(status)
        while i < n and status[i] >= RETIRED:
            i += 1
        self._head_ptr = i
        return i

    # -- ordering-scan bases used by the MCM engines -------------------
    def retired_base(self) -> int:
        """First index not yet >= RETIRED.  Ops before it have all
        loads/fences/RMWs DONE and all stores at least buffered -- the
        exact precondition the TSO retire rule and the WEAK prior-op
        scans check, so the engines may start scanning here."""
        return self._head()

    def done_base(self) -> int:
        """First index not yet DONE (<= retired_base: buffered stores)."""
        i = self._done_ptr
        status = self.status
        n = len(status)
        while i < n and status[i] == DONE:
            i += 1
        self._done_ptr = i
        return i

    def _scan(self) -> None:
        self._scan_pending = False
        ops = self.ops
        status = self.status
        mcm = self.mcm
        fence_done = mcm.fence_done
        can_issue = mcm.can_issue
        uses_sb = mcm.uses_store_buffer
        sb_entries = self.sb_entries
        n = len(ops)
        progress = True
        while progress:
            progress = False
            head = self._head()
            if head == n:
                if not self.sb and all(s == DONE for s in status):
                    if self.finish_time is None:
                        self._finish()
                    return
            limit = head + self.window
            if limit > n:
                limit = n
            for i in range(head, limit):
                if status[i] != PEND:
                    continue
                op = ops[i]
                kind = op.kind
                if kind == FENCE:
                    if fence_done(i, self):
                        status[i] = DONE
                        progress = True
                    continue
                if not can_issue(i, self):
                    continue
                if uses_sb and op.is_write and kind != RMW:
                    if len(self.sb) >= sb_entries:
                        continue
                if op.gap > 0:
                    status[i] = SCHED
                    self.engine.post(op.gap * self.cycle, self._issue, i)
                else:
                    self._issue(i)
                progress = True
        self._prefetch_window()
        self._drain_sb()

    def _prefetch_window(self) -> None:
        """Non-binding prefetches for ordering-stalled window ops.

        Models speculative execution and hardware prefetching: the miss
        latency of a load/store that the MCM will not let issue yet is
        overlapped, while its architectural effect still happens in
        order (the later real access re-checks the cache and re-misses
        if the line was stolen in between -- exactly an x86 squash).
        """
        head = self._head()
        ops = self.ops
        status = self.status
        prefetched = self._prefetched
        fifo_sb = self.mcm.sb_parallelism == 1
        l1 = self.l1
        limit = head + self.window
        n = len(ops)
        if limit > n:
            limit = n
        for i in range(head, limit):
            if status[i] != PEND or i in prefetched:
                continue
            op = ops[i]
            if op.kind == FENCE:
                continue
            is_write = op.is_write
            if is_write and fifo_sb:
                # TSO: store-miss overlap is bounded by the FIFO store
                # buffer's own ownership prefetches, not the window.
                continue
            deps_done = True
            for d in op.deps:
                if status[d] != DONE:
                    deps_done = False
                    break
            if not deps_done:
                continue
            prefetched.add(i)
            if l1.would_hit(op.kind, op.addr):
                continue
            l1.core_request("PREFETCH_M" if is_write else "PREFETCH_S",
                            op.addr, 0, lambda _v: None)

    def _issue(self, i: int) -> None:
        op = self.ops[i]
        if op.kind in (STORE, STORE_REL) and self.mcm.uses_store_buffer:
            # Retire into the store buffer; globally performed later.
            self.status[i] = RETIRED
            self.sb.append(SBEntry(i, op.addr, op.value, op.kind))
            self.ops_retired += 1
            self._drain_sb()
            self._request_scan()
            return
        self.status[i] = ISSUED
        if op.kind in (LOAD, LOAD_ACQ):
            forwarded = self._forward_value(i, op.addr)
            if forwarded is not None and op.kind == LOAD:
                self.engine.post(self.cycle, self._complete, i, forwarded)
                return
        self.l1.core_request(op.kind, op.addr, op.value, lambda v, i=i: self._complete(i, v))

    def _forward_value(self, i: int, addr: int) -> int | None:
        """Store-to-load forwarding from the youngest older SB entry."""
        for entry in reversed(self.sb):
            if entry.addr == addr and entry.op_index < i:
                return entry.value
        return None

    def _complete(self, i: int, value) -> None:
        op = self.ops[i]
        if op.reg is not None and value is not None:
            self.regs[op.reg] = value
        if self.status[i] != RETIRED:
            self.ops_retired += 1
        self.status[i] = DONE
        self._request_scan()

    # ------------------------------------------------------------------
    # Store buffer drain.
    # ------------------------------------------------------------------
    #: How many younger store-buffer entries get an ownership prefetch
    #: (RFO) while the head drains.  Real TSO cores overlap store-miss
    #: latency this way while still *committing* writes in order.
    PREFETCH_DEPTH = 3

    def _drain_sb(self) -> None:
        sb = self.sb
        if not sb:
            return
        parallelism = self.mcm.sb_parallelism
        l1_request = self.l1.core_request
        inflight = 0
        for e in sb:
            if e.draining:
                inflight += 1
        if inflight < parallelism:
            # Addresses of entries *before* the current position; an
            # older same-address store must leave the buffer first.
            prior_addrs: set[int] = set()
            for pos, entry in enumerate(sb):
                if inflight >= parallelism:
                    break
                addr = entry.addr
                if entry.draining:
                    prior_addrs.add(addr)
                    continue
                if addr in prior_addrs:
                    prior_addrs.add(addr)
                    continue  # per-address FIFO: wait for the older store
                prior_addrs.add(addr)
                if parallelism == 1 and pos != _first_undrained(sb):
                    continue  # strict FIFO (TSO)
                entry.draining = True
                inflight += 1
                l1_request(
                    entry.kind,
                    entry.addr,
                    entry.value,
                    lambda _v, e=entry: self._store_performed(e),
                )
        # Overlap upcoming store misses: ownership prefetches for the
        # next few distinct lines (no ordering effect -- commits above
        # still happen strictly in drain order).
        prefetched = 0
        seen: set[int] = set()
        for entry in sb:
            if prefetched >= self.PREFETCH_DEPTH:
                break
            if entry.addr in seen:
                continue
            seen.add(entry.addr)
            if entry.draining or entry.prefetched:
                continue
            entry.prefetched = True
            prefetched += 1
            l1_request("PREFETCH_M", entry.addr, 0, lambda _v: None)

    def _store_performed(self, entry: SBEntry) -> None:
        self.sb.remove(entry)
        self.status[entry.op_index] = DONE
        self._request_scan()

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """True once the current program has fully completed."""
        return self.finish_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.core_id} mcm={self.mcm.name}>"


def _first_undrained(sb: list[SBEntry]) -> int:
    for pos, entry in enumerate(sb):
        if not entry.draining:
            return pos
    return -1
