"""JSON export of run and experiment results.

Makes measurements machine-consumable (plotting, regression tracking,
cross-run diffing) without pickling simulator objects.
"""

from __future__ import annotations

import json

from repro.stats.collectors import OpStats, RunResult


def opstats_to_dict(stats: OpStats) -> dict:
    """Flatten an :class:`OpStats` into plain JSON-ready data."""
    return {
        "ops": stats.ops,
        "hits": stats.hits,
        "misses": stats.misses,
        "total_latency_ticks": stats.total_latency,
        "miss_bins": {
            f"{group}/{bin_name}": {"count": count, "ticks": ticks}
            for (group, bin_name), (count, ticks) in sorted(stats.miss_bins.items())
        },
    }


def run_result_to_dict(result: RunResult) -> dict:
    """Flatten a :class:`RunResult` (registers included) to JSON data."""
    return {
        "exec_time_ticks": result.exec_time,
        "exec_ns": result.exec_ns,
        "events": result.events,
        "messages": result.messages,
        "stats": opstats_to_dict(result.stats),
        "per_core_regs": result.per_core_regs,
        "extra": result.extra,
    }


def merge_obs(result: RunResult, obs) -> RunResult:
    """Merge an observability dump into ``result.extra["obs"]``.

    ``obs`` is either an :class:`repro.obs.Observability` (its
    ``finalize()`` is called) or an already-finalized dump dict.  The
    dump is round-tripped through :func:`json.dumps` first so the
    contract that ``RunResult.extra`` stays JSON-serializable is
    enforced at merge time, not discovered at export time.
    """
    dump = obs.finalize() if hasattr(obs, "finalize") else obs
    json.dumps(dump)  # serializability contract -- raises on violation
    result.extra["obs"] = dump
    return result


def figure_to_dict(figure) -> dict:
    """Serialize any harness figure/table result object.

    Dispatches on the attributes the result classes expose; the output
    always carries the normalized series a plotting script needs.
    """
    if hasattr(figure, "times") and hasattr(figure, "workloads"):  # Fig. 10
        return {
            "figure": "10",
            "combos": [list(c) for c in figure.combos],
            "normalized": {
                workload: {
                    "-".join(combo): figure.normalized(workload, combo)
                    for combo in figure.combos
                }
                for workload in figure.workloads
            },
            "geomean": {
                "-".join(combo): figure.mean_slowdown(combo)
                for combo in figure.combos
            },
        }
    if hasattr(figure, "suites"):  # Fig. 9
        from repro.harness.experiments import FIG9_MCMS

        return {
            "figure": "9",
            "normalized": {
                "-".join(combo): {
                    suite: {
                        label: figure.normalized(combo, label, suite)
                        for label, _m in FIG9_MCMS
                    }
                    for suite in figure.suites
                }
                for combo in figure.combos
            },
        }
    if hasattr(figure, "systems"):  # Fig. 11
        return {
            "figure": "11",
            "miss_cycles": {
                workload: {
                    system: opstats_to_dict(figure.stats[(workload, system)])
                    for system in figure.systems
                }
                for workload in figure.workloads
            },
            "high_latency_growth": {
                workload: figure.high_latency_growth(workload)
                for workload in figure.workloads
            },
        }
    if hasattr(figure, "results"):  # Table IV
        return {
            "table": "IV",
            "cells": {
                "|".join(key): {
                    "passed": result.passed,
                    "runs": result.runs,
                    "distinct_outcomes": len(result.observed),
                    "allowed_outcomes": len(result.allowed),
                }
                for key, result in figure.results.items()
            },
        }
    raise TypeError(f"unknown result object {type(figure).__name__}")


def dump_json(obj, path) -> None:
    """Serialize a result object (or plain dict) to a JSON file."""
    if not isinstance(obj, dict):
        if isinstance(obj, RunResult):
            obj = run_result_to_dict(obj)
        else:
            obj = figure_to_dict(obj)
    with open(path, "w") as handle:
        json.dump(obj, handle, indent=2, sort_keys=True)
        handle.write("\n")
