"""Measurement collectors and reporting helpers."""

from repro.stats.collectors import OpStats, RunResult, LATENCY_BINS

__all__ = ["OpStats", "RunResult", "LATENCY_BINS"]
