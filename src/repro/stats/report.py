"""Run reports: human-readable summaries of a simulated run.

``render_report(system, result)`` assembles the counters scattered over
the system (cores, L1s, bridges, ports, home, network) into one
readable block -- what you'd want from a simulator's stats dump.
"""

from __future__ import annotations

from repro.stats.collectors import LATENCY_BINS, RunResult


def render_report(system, result: RunResult, title: str = "run report") -> str:
    """Render a full human-readable run summary."""
    lines = [title, "=" * len(title)]
    lines.append(f"execution time      : {result.exec_ns:,.0f} ns")
    lines.append(f"events executed     : {result.events:,}")
    lines.append(f"fabric messages     : {result.messages:,} "
                 f"({system.network.stats.bytes:,} bytes)")
    for vnet, count in sorted(system.network.stats.per_vnet.items()):
        lines.append(f"  vnet {vnet:<6}       : {count:,}")
    stats = result.stats
    hit_rate = stats.hits / stats.ops if stats.ops else 0.0
    lines.append(f"memory ops          : {stats.ops:,} "
                 f"({hit_rate:.1%} L1 hit rate)")
    for bin_name, _bound in LATENCY_BINS:
        lines.append(
            f"  {bin_name:>6} misses    : {stats.miss_count(bin_name=bin_name):,} "
            f"({stats.miss_cycles(bin_name=bin_name):,} ticks)"
        )
    for cluster in system.clusters:
        bridge = cluster.bridge
        port = bridge.port
        lines.append(
            f"{bridge.node_id} ({bridge.variant.name:<5}): "
            f"{bridge.local_txns:,} local txns, "
            f"{port.requests:,} global reqs, "
            f"{port.writebacks:,} WBs, "
            f"{port.snoops:,} snoops, "
            f"{bridge.recalls_done:,} recalls"
            + (f", {port.conflicts} conflicts"
               if hasattr(port, "conflicts") else "")
        )
    home = system.home
    if hasattr(home, "transactions"):
        extra = ""
        if hasattr(home, "queued_total"):
            extra = (f", {home.queued_total:,} convoyed "
                     f"({home.queue_wait_ticks:,} wait ticks)")
        lines.append(f"home               : {home.transactions:,} txns{extra}")
    lines.append(f"memory device       : {home.memory.reads:,} reads, "
                 f"{home.memory.writes:,} writes")
    return "\n".join(lines)
