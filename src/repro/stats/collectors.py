"""Latency/miss statistics collectors.

The Fig. 11 analysis bins *miss cycles* into three latency ranges that
map onto the system's physical levels:

- ``low``    (< 75 ns): intra-cluster coherence (L1/cluster-cache hits
  and transfers),
- ``medium`` (75-400 ns): a plain remote (CXL) memory round trip,
- ``high``   (> 400 ns): cross-cluster coherence transactions (snooping
  the other cluster, nested recalls, convoyed requests).

Instruction kinds are grouped as the paper does: loads, stores and RMWs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import TICKS_PER_NS

#: (name, upper bound in ns); the last bin is open-ended.
LATENCY_BINS = (("low", 75.0), ("medium", 400.0), ("high", float("inf")))

_KIND_GROUP = {
    "LOAD": "load",
    "LOAD_ACQ": "load",
    "STORE": "store",
    "STORE_REL": "store",
    "RMW": "rmw",
}


def latency_bin(latency_ticks: int) -> str:
    """Classify a latency into the low/medium/high paper bins."""
    ns = latency_ticks / TICKS_PER_NS
    for name, bound in LATENCY_BINS:
        if ns < bound:
            return name
    return LATENCY_BINS[-1][0]  # pragma: no cover


class OpStats:
    """Per-L1 (or aggregated) operation statistics."""

    def __init__(self) -> None:
        self.ops = 0
        self.hits = 0
        self.misses = 0
        self.total_latency = 0
        # (kind_group, bin) -> [count, total_ticks], misses only.
        self.miss_bins: dict[tuple[str, str], list[int]] = {}

    def record_op(self, kind: str, latency: int, hit: bool) -> None:
        """Record one completed memory op."""
        self.ops += 1
        self.total_latency += latency
        if hit:
            self.hits += 1
            return
        self.misses += 1
        key = (_KIND_GROUP.get(kind, "other"), latency_bin(latency))
        entry = self.miss_bins.setdefault(key, [0, 0])
        entry[0] += 1
        entry[1] += latency

    def merge(self, other: "OpStats") -> None:
        """Fold another collector's counts into this one."""
        self.ops += other.ops
        self.hits += other.hits
        self.misses += other.misses
        self.total_latency += other.total_latency
        for key, (count, ticks) in other.miss_bins.items():
            entry = self.miss_bins.setdefault(key, [0, 0])
            entry[0] += count
            entry[1] += ticks

    # -- Fig. 11 views ----------------------------------------------------
    def miss_cycles(self, group: str | None = None, bin_name: str | None = None) -> int:
        """Total miss ticks, optionally filtered by kind group / latency bin."""
        total = 0
        for (kind_group, latency_range), (_count, ticks) in self.miss_bins.items():
            if group is not None and kind_group != group:
                continue
            if bin_name is not None and latency_range != bin_name:
                continue
            total += ticks
        return total

    def miss_count(self, group: str | None = None, bin_name: str | None = None) -> int:
        """Miss count, optionally filtered by kind group / latency bin."""
        total = 0
        for (kind_group, latency_range), (count, _ticks) in self.miss_bins.items():
            if group is not None and kind_group != group:
                continue
            if bin_name is not None and latency_range != bin_name:
                continue
            total += count
        return total

    def breakdown(self) -> dict[tuple[str, str], tuple[int, int]]:
        """(kind group, bin) -> (miss count, miss ticks)."""
        return {key: tuple(value) for key, value in self.miss_bins.items()}

    @property
    def mpki_proxy(self) -> float:
        """Misses per op (the calibration knob standing in for MPKI)."""
        return self.misses / self.ops if self.ops else 0.0

    def register_metrics(self, registry, path: str) -> None:
        """Publish these counts into a `repro.obs` metrics registry.

        ``registry`` is duck-typed (any object with ``counter(path,
        unit)``) so the stats layer keeps no import dependency on
        :mod:`repro.obs`.  This is how ``OpStats`` *plugs into* the
        hierarchical registry instead of being replaced by it.
        """
        registry.counter(f"{path}.ops", unit="ops").add(self.ops)
        registry.counter(f"{path}.hits", unit="ops").add(self.hits)
        registry.counter(f"{path}.misses", unit="ops").add(self.misses)
        registry.counter(f"{path}.total_latency",
                         unit="ticks").add(self.total_latency)
        for (group, bin_name), (count, ticks) in sorted(self.miss_bins.items()):
            base = f"{path}.miss.{group}.{bin_name}"
            registry.counter(f"{base}.count", unit="ops").add(count)
            registry.counter(f"{base}.ticks", unit="ticks").add(ticks)


@dataclass
class RunResult:
    """Outcome of one simulated program/workload run."""

    exec_time: int  # ticks until the last core finished
    per_core_regs: list[dict]
    stats: OpStats
    events: int = 0
    messages: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def exec_ns(self) -> float:
        return self.exec_time / TICKS_PER_NS
