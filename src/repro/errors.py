"""Package-wide error types."""


class ProtocolError(RuntimeError):
    """An impossible coherence transition was attempted.

    Raised eagerly by controllers when a message arrives in a state the
    protocol says cannot occur -- turning silent corruption into loud
    failures the verification harness can catch.
    """


class UnknownProtocolError(ProtocolError):
    """A protocol name failed to resolve against the registered specs.

    Carries a human-readable message listing the available names, so CLI
    front-ends can surface it directly instead of a traceback.
    """


class ConsistencyViolation(AssertionError):
    """An invariant monitor observed a violation (SWMR, value, inclusion)."""
