"""Package-wide error types."""


class ProtocolError(RuntimeError):
    """An impossible coherence transition was attempted.

    Raised eagerly by controllers when a message arrives in a state the
    protocol says cannot occur -- turning silent corruption into loud
    failures the verification harness can catch.
    """


class ConsistencyViolation(AssertionError):
    """An invariant monitor observed a violation (SWMR, value, inclusion)."""
