"""Package-wide error types."""


class ProtocolError(RuntimeError):
    """An impossible coherence transition was attempted.

    Raised eagerly by controllers when a message arrives in a state the
    protocol says cannot occur -- turning silent corruption into loud
    failures the verification harness can catch.
    """


class UnknownProtocolError(ProtocolError):
    """A protocol name failed to resolve against the registered specs.

    Carries a human-readable message listing the available names, so CLI
    front-ends can surface it directly instead of a traceback.
    """


class ConsistencyViolation(AssertionError):
    """An invariant monitor observed a violation (SWMR, value, inclusion)."""


class InvariantViolation(ConsistencyViolation):
    """A typed invariant break raised at the point of corruption.

    Unlike the periodic monitors (which observe a violation after the
    fact), controllers raise this the moment a protocol action would
    corrupt state -- e.g. a recall response arriving for a line that was
    torn down mid-recall under a broken Rule II.  ``addr`` carries the
    offending line so harnesses can report it without parsing the
    message.
    """

    def __init__(self, message: str, addr: int | None = None) -> None:
        super().__init__(message)
        self.addr = addr
