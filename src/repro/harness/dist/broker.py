"""The fault-tolerant work-queue backend (broker side).

``QueueBackend.submit`` turns the calling process into a *broker*: it
listens on a TCP socket, hands one cell at a time to each connected
``repro worker`` process (JSON-line framed, see
:mod:`repro.harness.dist.protocol`), and keeps the sweep alive through
every failure mode the fleet can throw at it:

- **per-cell timeout** -- an assignment that outlives ``cell_timeout``
  is taken back, the wedged worker is dropped, and the cell re-queued
  (``dist.timeouts``, ``dist.retries``);
- **bounded retry with exponential backoff** -- a cell that raised or
  timed out is retried up to ``max_retries`` times, each retry gated by
  ``backoff_base * 2**attempt`` seconds (``dist.retries``); a cell that
  exhausts its budget resolves to a
  :class:`~repro.harness.sweep.CellFailure`;
- **dead-worker detection** -- a worker that closes its connection or
  goes silent past ``heartbeat_timeout`` is declared dead
  (``dist.dead_workers``) and its in-flight cell re-queued immediately
  (``dist.requeued``); spawned workers are respawned while the budget
  lasts (``dist.respawns``);
- **stale-result rejection** -- a worker the broker already gave up on
  may still deliver; the scheduler accepts only the *current*
  assignment, so a re-queued cell's result is never overwritten;
- **graceful degradation** -- when no workers remain and none can be
  respawned, the remaining cells run serially in-process
  (``dist.serial_cells``), so a sweep always completes.

Workers are either spawned locally (``QueueBackend(workers=2)`` starts
``python -m repro worker --connect 127.0.0.1:PORT`` subprocesses) or
started by hand/SSH anywhere that can reach ``host:port``
(``spawn=False``).  Every counter lives in an
:class:`repro.obs.metrics.MetricsRegistry` under ``dist.*`` and the
standard sweep ``progress`` callback fires per completed cell, so
``--progress`` reports a distributed sweep exactly like a local one.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from typing import Callable

from repro.harness.dist import protocol
from repro.harness.dist.scheduler import GAVE_UP, RETRY, CellScheduler
from repro.harness.sweep import CellFailure
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FleetTelemetry


class _Conn:
    """Broker-side view of one worker connection."""

    __slots__ = ("channel", "wid", "last_seen", "inflight", "ready", "proc",
                 "worker_key", "flight")

    def __init__(self, channel, wid: int, now: float) -> None:
        self.channel = channel
        self.wid = wid
        self.last_seen = now
        self.inflight: set[int] = set()  # cell indices of the active batch
        self.ready = False  # handshake complete
        self.proc = None    # spawned subprocess, if broker-launched
        self.worker_key = f"w{wid}"   # stable fleet key, refined at hello
        self.flight: list = []        # latest flight-recorder dump

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<worker#{self.wid} inflight={sorted(self.inflight)}>"


def worker_environment(extra=None) -> dict:
    """Environment for a spawned worker process.

    Inherits the broker's environment and prepends the broker's
    ``sys.path`` to ``PYTHONPATH`` so cell functions defined in any
    importable module (the repo's ``src`` layout, the test package)
    resolve identically in the worker.
    """
    env = dict(os.environ)
    paths = [p for p in sys.path if p and os.path.isdir(p)]
    current = env.get("PYTHONPATH", "")
    if current:
        paths.append(current)
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(paths))
    if extra:
        env.update(extra)
    return env


class QueueBackend:
    """Broker + N workers over TCP; see the module docstring.

    Parameters mirror the failure semantics: ``cell_timeout`` /
    ``max_retries`` / ``backoff_base`` shape the retry policy,
    ``heartbeat_timeout`` the dead-worker detector, ``respawn_limit``
    how many replacement workers may be spawned (default:
    ``workers + max_retries``), and ``wait_for_workers`` how long an
    empty fleet is waited for before degrading to the serial path.
    ``metrics`` is the :class:`MetricsRegistry` receiving the ``dist.*``
    counters (a fresh one per backend by default); ``events`` an
    optional ``callback(kind, detail)`` fired on every failure-path
    event (what ``--progress`` prints).

    ``chunk`` batches several cells into one ``cells`` assignment frame
    so cheap cells do not pay one queue round-trip each; the worker
    still streams one reply per cell, so retries, timeouts and progress
    stay per-cell (batched cells get staggered deadlines).  ``None``
    (default) auto-sizes the batch to keep at least ~4 batches per
    worker for load balancing; ``1`` restores the one-at-a-time wire
    behavior.

    ``telemetry`` (default on) advertises the telemetry channel in the
    ``welcome`` handshake; worker metric snapshots, span dumps and
    flight-recorder rings then accumulate in :attr:`fleet`
    (:class:`repro.obs.telemetry.FleetTelemetry`) with one slot per
    worker, and dead/raising cells carry the victim worker's flight
    dump on their :class:`CellFailure`.
    """

    name = "queue"

    def __init__(
        self,
        workers: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn: bool = True,
        cell_timeout: float | None = 300.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 5.0,
        wait_for_workers: float = 60.0,
        respawn_limit: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        metrics: MetricsRegistry | None = None,
        events: Callable[[str, dict], None] | None = None,
        check_fingerprint: bool = True,
        chunk: int | None = None,
        telemetry: bool = True,
    ) -> None:
        from repro.harness.sweep import resolve_jobs

        self.workers = resolve_jobs(workers)
        self.host = host
        self.port = port
        self.spawn = spawn
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.wait_for_workers = wait_for_workers
        if respawn_limit is None:
            respawn_limit = self.workers + max_retries
        self.respawn_limit = respawn_limit
        self.initializer = initializer
        self.initargs = initargs
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.check_fingerprint = check_fingerprint
        self.chunk = chunk
        self.telemetry = telemetry
        #: Fleet-wide telemetry aggregate (worker snapshots, span dumps,
        #: flight recorders).  Persists across submit() calls so
        #: multi-wave model checks accumulate one fleet view.
        self.fleet = FleetTelemetry()
        #: Latest flight dump per unresolved cell index, captured when
        #: the worker running it died (feeds the fallback CellFailure).
        self._flight_for: dict[int, tuple] = {}
        #: (host, port) actually bound, set while submit() runs.
        self.address: tuple[str, int] | None = None
        #: Batch size in effect for the current submit() (auto-sized
        #: per sweep when ``chunk`` is None).
        self._active_chunk = 1

    # -- small helpers -------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(f"dist.{name}").add(amount)

    def _event(self, kind: str, **detail) -> None:
        if self.events is not None:
            self.events(kind, detail)

    # -- worker bootstrap (overridden by SSHBackend) -------------------
    def _launch_workers(self, address, count: int) -> list:
        """Spawn ``count`` loopback worker processes; return Popens."""
        host, port = address
        connect = f"{'127.0.0.1' if host in ('', '0.0.0.0') else host}:{port}"
        procs = []
        for _ in range(count):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", connect],
                env=worker_environment(),
                stdout=subprocess.DEVNULL,
            ))
        return procs

    # -- the broker loop -----------------------------------------------
    def submit(self, cells, progress=None) -> dict:
        """Run every cell through the fleet; results keyed by cell."""
        cells = list(cells)
        if not cells:
            return {}
        payloads = self._payloads(cells)
        if payloads is None:
            # Unpicklable cell: nothing can cross a process boundary.
            return self._run_serial(cells, range(len(cells)), {}, progress)

        sched = CellScheduler(
            len(cells), max_retries=self.max_retries,
            backoff_base=self.backoff_base, cell_timeout=self.cell_timeout)
        self._active_chunk = self._chunk_for(len(cells))
        self._flight_for = {}  # cell indices are per-submit
        values: dict[int, object] = {}
        selector = selectors.DefaultSelector()
        listener = socket.create_server((self.host, self.port), backlog=64)
        listener.setblocking(False)
        selector.register(listener, selectors.EVENT_READ, data=None)
        self.address = listener.getsockname()[:2]
        procs: list = []
        conns: dict[object, _Conn] = {}  # channel -> conn
        next_wid = 0
        respawns_used = 0
        ever_connected = False
        started = time.monotonic()
        try:
            if self.spawn:
                procs = self._launch_workers(self.address,
                                             min(self.workers, len(cells)))
            while not sched.all_resolved():
                now = time.monotonic()
                self._reap(procs)
                # Dead-fleet handling: degrade rather than hang.
                if not conns and not procs:
                    can_wait = (not ever_connected and not self.spawn
                                and now - started < self.wait_for_workers)
                    if self.spawn and respawns_used < self.respawn_limit:
                        need = min(self.workers, len(sched.unfinished()))
                        if need > 0:
                            budget = self.respawn_limit - respawns_used
                            procs = self._launch_workers(
                                self.address, min(need, budget))
                            respawns_used += len(procs)
                            self._count("respawns", len(procs))
                            self._event("respawn", count=len(procs))
                    elif not can_wait:
                        self._event("serial-fallback",
                                    cells=len(sched.unfinished()))
                        break
                timeout = self._tick_timeout(sched, now)
                for key, _mask in selector.select(timeout):
                    if key.data is None:
                        self._accept(listener, selector, conns, now,
                                     next_wid)
                        next_wid += 1
                        continue
                    conn = key.data
                    messages = conn.channel.feed()
                    if messages is None:  # EOF / connection reset
                        self._drop(selector, conns, conn, sched, values,
                                   dead=True)
                        continue
                    for message in messages:
                        if self._handle(message, conn, selector, conns,
                                        sched, values, cells, progress):
                            ever_connected = True
                now = time.monotonic()
                self._expire_cells(selector, conns, sched, values, cells,
                                   now, progress)
                self._expire_silent(selector, conns, sched, values, now)
                self._assign_ready(conns, sched, cells, now)
        finally:
            for conn in list(conns.values()):
                try:
                    conn.channel.send({"type": "shutdown"})
                except OSError:
                    pass
                conn.channel.close()
            selector.close()
            listener.close()
            self._terminate(procs)
            self.address = None

        unfinished = sched.unfinished()
        if unfinished:
            self._run_serial(cells, unfinished, values, progress,
                             already_done=sched.resolved_count())
        results: dict = {}
        for index, cell in enumerate(cells):
            if index in values:
                results[cell.key] = values[index]
            else:
                failure = sched.failure(index)
                if not isinstance(failure, CellFailure):
                    failure = CellFailure(
                        exc_type="RuntimeError",
                        message=str(failure or "cell never resolved"),
                        kind="worker died",
                        attempts=sched.attempts(index),
                        flight=self._flight_for.get(index, ()))
                results[cell.key] = failure
        return results

    # -- submit() internals --------------------------------------------
    def _chunk_for(self, n_cells: int) -> int:
        """Batch size for one sweep: explicit ``chunk`` or auto.

        Auto-sizing keeps at least ~4 batches per worker so one slow
        batch cannot serialize the tail of the sweep, and caps the
        batch at 16 so a lost worker never orphans more than that.
        """
        if self.chunk is not None:
            return max(1, self.chunk)
        return max(1, min(16, n_cells // (4 * max(1, self.workers))))

    def _payloads(self, cells):
        import pickle

        payloads = [(cell.fn, dict(cell.kwargs)) for cell in cells]
        try:
            pickle.dumps(payloads)
            if self.initializer is not None:
                pickle.dumps((self.initializer, self.initargs))
        except Exception:
            return None
        return payloads

    def _tick_timeout(self, sched, now: float) -> float:
        """Selector timeout: wake for the nearest deadline or backoff."""
        horizon = now + 0.25  # heartbeat bookkeeping floor
        deadline = sched.next_deadline()
        if deadline is not None:
            horizon = min(horizon, deadline)
        ready = sched.next_ready_at(now)
        if ready is not None:
            horizon = min(horizon, ready)
        return max(0.01, min(0.25, horizon - now))

    def _accept(self, listener, selector, conns, now, wid) -> None:
        try:
            sock, _addr = listener.accept()
        except OSError:  # pragma: no cover - raced accept
            return
        sock.setblocking(False)
        channel = protocol.LineChannel(sock)
        conn = _Conn(channel, wid, now)
        conns[channel] = conn
        selector.register(sock, selectors.EVENT_READ, data=conn)

    def _handle(self, message, conn, selector, conns, sched, values,
                cells, progress) -> bool:
        """Dispatch one worker message; True when it was a valid hello."""
        now = time.monotonic()
        conn.last_seen = now
        kind = message.get("type")
        if kind == "heartbeat":
            return False
        if kind == "hello":
            theirs = message.get("fingerprint", "")
            ours = protocol.source_fingerprint()
            if self.check_fingerprint and theirs != ours:
                self._count("fingerprint_rejects")
                self._event("worker-rejected", fingerprint=theirs,
                            expected=ours)
                try:
                    conn.channel.send({
                        "type": "reject",
                        "reason": f"source fingerprint {theirs!r} does not "
                                  f"match broker {ours!r}"})
                except OSError:
                    pass
                self._drop(selector, conns, conn, sched, values, dead=False)
                return False
            init = ""
            if self.initializer is not None:
                init = protocol.pack((self.initializer, self.initargs))
            try:
                conn.channel.send({
                    "type": "welcome", "init": init,
                    "heartbeat_interval": self.heartbeat_interval,
                    "telemetry": bool(self.telemetry)})
            except OSError:
                self._drop(selector, conns, conn, sched, values, dead=True)
                return False
            conn.ready = True
            conn.worker_key = (f"w{conn.wid}:{message.get('host', '?')}"
                               f":{message.get('pid', '?')}")
            self._count("workers_connected")
            self._event("worker-connected", worker=conn.wid,
                        pid=message.get("pid"), host=message.get("host"))
            self._assign(conn, sched, cells, now)
            return True
        if kind == "result":
            index, attempt = message.get("id", -1), message.get("attempt", -1)
            try:
                value = protocol.unpack(message.get("payload", ""))
            except protocol.WireError as exc:
                # Undecodable result payload: treat like a failed attempt.
                self._failed_attempt(
                    conn, sched, values, cells, index, attempt,
                    CellFailure(exc_type="WireError", message=str(exc),
                                kind="error", attempts=max(attempt, 1)),
                    kind="error")
            else:
                if sched.complete(conn, index, attempt):
                    values[index] = value
                    conn.inflight.discard(index)
                    self._count("cells_completed")
                    if progress is not None:
                        progress(sched.resolved_count(), len(cells),
                                 cells[index].key,
                                 float(message.get("wall", 0.0)))
            self._assign(conn, sched, cells, now)
            return False
        if kind == "error":
            index, attempt = message.get("id", -1), message.get("attempt", -1)
            failure = CellFailure(
                exc_type=message.get("exc_type", "Exception"),
                message=message.get("exc_msg", ""),
                traceback=message.get("traceback", ""),
                kind="error",
                attempts=attempt if attempt > 0 else 1,
                flight=tuple(message.get("flight") or conn.flight))
            self._failed_attempt(conn, sched, values, cells, index, attempt,
                                 failure, kind="error")
            self._assign(conn, sched, cells, now)
            return False
        if kind == "telemetry":
            # Cumulative worker snapshot + incremental spans + flight.
            if message.get("flight"):
                conn.flight = list(message["flight"])
            if self.telemetry:
                self.fleet.update(conn.worker_key, message)
            return False
        # Unknown message type: tolerate (forward compatibility).
        return False

    def _failed_attempt(self, conn, sched, values, cells, index, attempt,
                        failure, kind) -> None:
        now = time.monotonic()
        outcome = sched.fail(conn, index, attempt, now,
                             failure=failure.retried(sched.attempts(index)),
                             kind=kind)
        conn.inflight.discard(index)
        if outcome == RETRY:
            self._count("retries")
            self._event("cell-retry", cell=str(cells[index].key), cause=kind,
                        attempt=attempt)
        elif outcome == GAVE_UP:
            self._count("cells_failed")
            self._event("cell-failed", cell=str(cells[index].key), cause=kind,
                        attempt=attempt)

    def _assign(self, conn, sched, cells, now) -> None:
        """Hand the next batch of ready cells to an idle worker.

        A worker is refilled only once its whole batch has resolved:
        replies stream back per cell, so the broker keeps exact
        accounting while the wire pays one frame per batch.
        """
        if not conn.ready or conn.inflight:
            return
        batch = sched.next_cells(conn, now, self._active_chunk)
        if not batch:
            return
        # The cell key doubles as the trace ID in stitched fleet traces.
        items = [{"id": index, "attempt": attempt,
                  "key": str(cells[index].key),
                  "payload": protocol.pack((cells[index].fn,
                                            dict(cells[index].kwargs)))}
                 for index, attempt in batch]
        try:
            if len(items) == 1:
                conn.channel.send({"type": "cell", **items[0]})
            else:
                conn.channel.send({"type": "cells", "items": items})
                self._count("batches")
            conn.inflight.update(index for index, _attempt in batch)
        except OSError:
            # Worker vanished between select and send; the EOF path
            # will reap it -- put the cells straight back.
            for index, attempt in batch:
                sched.fail(conn, index, attempt, now, kind="send-failed")

    def _assign_ready(self, conns, sched, cells, now) -> None:
        for conn in list(conns.values()):
            self._assign(conn, sched, cells, now)

    def _drop(self, selector, conns, conn, sched, values, dead: bool) -> None:
        """Unregister a connection; re-queue whatever it was running."""
        try:
            selector.unregister(conn.channel.sock)
        except (KeyError, ValueError):
            pass
        conn.channel.close()
        conns.pop(conn.channel, None)
        now = time.monotonic()
        requeued, gave_up = sched.worker_lost(conn, now)
        if dead and conn.ready:
            self._count("dead_workers")
            self._event("worker-dead", worker=conn.wid)
        if requeued:
            self._count("requeued", len(requeued))
        for index in gave_up:
            self._count("cells_failed")
            # Preserve the victim's last flight dump for the fallback
            # CellFailure this cell will resolve to.
            self._flight_for[index] = tuple(conn.flight)

    def _expire_cells(self, selector, conns, sched, values, cells, now,
                      progress) -> None:
        """Per-cell timeout: reclaim the cell, drop the wedged worker."""
        for index, worker, attempt in sched.expired(now):
            self._count("timeouts")
            self._event("cell-timeout", cell=str(cells[index].key),
                        attempt=attempt, worker=worker.wid)
            failure = CellFailure(
                exc_type="TimeoutError",
                message=f"cell exceeded {self.cell_timeout}s",
                kind="timeout", attempts=attempt,
                flight=tuple(worker.flight))
            self._failed_attempt(worker, sched, values, cells, index,
                                 attempt, failure, kind="timeout")
            # The worker is wedged on the expired cell: cut it loose.
            self._drop(selector, conns, worker, sched, values, dead=False)

    def _expire_silent(self, selector, conns, sched, values, now) -> None:
        """Heartbeat-based dead-worker detection."""
        for conn in list(conns.values()):
            if now - conn.last_seen > self.heartbeat_timeout:
                self._drop(selector, conns, conn, sched, values, dead=True)

    def _run_serial(self, cells, indices, values, progress,
                    already_done: int = 0) -> dict:
        """Graceful degradation: finish the given cells in-process."""
        indices = list(indices)
        if self.initializer is not None and indices:
            self.initializer(*self.initargs)
        self._count("serial_cells", len(indices))
        done = already_done
        for index in indices:
            cell = cells[index]
            t0 = time.perf_counter()
            try:
                values[index] = cell.fn(**cell.kwargs)
            except Exception as exc:
                values[index] = CellFailure.from_exception(exc)
            done += 1
            if progress is not None:
                progress(done, len(cells), cell.key,
                         time.perf_counter() - t0)
        return {cells[i].key: values[i] for i in sorted(values)}

    def _reap(self, procs: list) -> None:
        """Forget spawned workers that already exited."""
        procs[:] = [proc for proc in procs if proc.poll() is None]

    def _terminate(self, procs) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
