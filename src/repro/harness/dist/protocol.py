"""Wire protocol for the distributed sweep queue.

One TCP connection per worker; every message is a single JSON object
terminated by ``\\n`` (JSON-line framing), so the stream is inspectable
with ``nc`` and resilient to partial reads.  Binary payloads -- the
``(fn, kwargs)`` of a cell and its result value -- travel as base64
pickle inside the JSON envelope: pickle stores module-level functions
by reference, which is exactly the spawn-safety contract
:class:`~repro.harness.sweep.SweepCell` already imposes, and lets any
picklable result (ints, OpStats, RunResult, LitmusResult) cross hosts
unchanged.

Message vocabulary (``type`` field):

========== ========= ====================================================
type       direction fields
========== ========= ====================================================
hello      w -> b    fingerprint, pid, host, version
welcome    b -> w    init (base64 pickle of (initializer, initargs) or ""),
                     heartbeat_interval, telemetry (bool)
reject     b -> w    reason
cell       b -> w    id, attempt, key, payload (base64 pickle of (fn, kwargs))
cells      b -> w    items: [{id, attempt, key, payload}, ...] (chunked batch)
result     w -> b    id, attempt, wall, payload (base64 pickle of value)
error      w -> b    id, attempt, wall, exc_type, exc_msg, traceback, flight
heartbeat  w -> b    (empty)
telemetry  w -> b    seq, flight, [snapshot, spans] (see below)
shutdown   b -> w    (empty)
========== ========= ====================================================

A ``cells`` batch amortizes one queue round-trip over several cheap
cells; the worker runs the items serially and streams back one
``result``/``error`` frame per item, so broker-side accounting (retry,
stale rejection, progress) stays strictly per-cell.

The ``telemetry`` frame (:mod:`repro.obs.telemetry`) piggybacks on the
existing flow: a *light* frame (``flight`` ring-buffer dump only) is
sent at cell start so a SIGKILL mid-cell still leaves postmortem
evidence broker-side, and a *full* frame (cumulative
``MetricsRegistry`` ``snapshot`` + the span dicts accepted since the
last full frame + ``flight``) is sent immediately before each
``result``/``error`` frame and from the heartbeat thread when dirty.
Snapshots are cumulative, so the broker *replaces* each worker's slot
-- aggregation is idempotent under re-send.  Both sides tolerate
unknown frame types, so v2 peers interoperate (they just carry no
telemetry); the cell ``key`` doubles as the trace ID for stitched
fleet traces.

The ``fingerprint`` in ``hello`` is the generator source fingerprint
(:func:`repro.core.generator._source_fingerprint`): a worker built from
different protocol/spec/generator source would synthesize *different*
compound FSMs, so the broker rejects it instead of silently mixing
results (``dist.fingerprint_rejects``).

Trust model: the payloads are pickle, so the queue assumes the same
trust boundary as ``multiprocessing`` itself -- only run brokers and
workers across machines you control (loopback by default).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading

#: Upper bound on one framed line; a line longer than this means a
#: corrupt peer (or a result that should not be shipped over a queue).
MAX_LINE_BYTES = 256 * 1024 * 1024

#: Bump when the message vocabulary changes incompatibly.
#: 2: chunked ``cells`` assignments (broker may batch several cells
#: per frame; workers stream per-cell replies).
#: 3: ``telemetry`` frames (worker metric snapshots, span dumps and
#: flight-recorder rings); ``welcome.telemetry`` opt-in flag; cell
#: ``key`` trace IDs; ``error.flight`` postmortem dumps.  Backward
#: compatible in both directions (unknown frames are tolerated).
PROTOCOL_VERSION = 3


class WireError(RuntimeError):
    """A malformed frame, oversized line, or protocol violation."""


def source_fingerprint() -> str:
    """The generator source fingerprint workers present at handshake."""
    from repro.core.generator import _source_fingerprint

    return _source_fingerprint()


# ---------------------------------------------------------------------------
# Payload packing: arbitrary picklable values <-> JSON-safe strings.
# ---------------------------------------------------------------------------

def pack(value) -> str:
    """Pickle ``value`` and base64-wrap it for the JSON envelope."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def unpack(text: str):
    """Inverse of :func:`pack`."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise WireError(f"bad payload: {type(exc).__name__}: {exc}") from exc


def encode(message: dict) -> bytes:
    """Frame one message as a JSON line."""
    if "type" not in message:
        raise WireError(f"message without type: {message!r}")
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one framed line back into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"bad frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise WireError(f"frame is not a typed message: {line[:80]!r}")
    return message


class LineChannel:
    """Incremental JSON-line codec over one socket.

    Works in both blocking mode (the worker: :meth:`recv` parks until a
    full line arrives) and non-blocking mode (the broker: :meth:`feed`
    drains whatever the selector said is readable and returns zero or
    more complete messages).  Writes are serialized with a lock because
    the worker sends heartbeats from a side thread while the main
    thread sends results.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = bytearray()
        self._pending: list[dict] = []
        self._send_lock = threading.Lock()
        self.closed = False

    # -- sending -------------------------------------------------------
    def send(self, message: dict) -> None:
        """Frame and send one message (thread-safe)."""
        data = encode(message)
        with self._send_lock:
            self.sock.sendall(data)

    # -- receiving -----------------------------------------------------
    def _split(self) -> list[dict]:
        messages = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > MAX_LINE_BYTES:
                    raise WireError(
                        f"frame exceeds {MAX_LINE_BYTES} bytes without a "
                        f"newline")
                return messages
            line = bytes(self._buffer[:newline])
            del self._buffer[:newline + 1]
            if line:  # tolerate keepalive blank lines
                messages.append(decode(line))

    def feed(self) -> list[dict]:
        """Drain readable bytes; return complete messages (may be []).

        Returns ``None`` when the peer closed the connection.  Intended
        for non-blocking sockets driven by a selector: a would-block
        read simply ends the drain.
        """
        while True:
            try:
                chunk = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return self._split()
            except OSError:
                self.closed = True
                return None
            if not chunk:
                self.closed = True
                return None
            self._buffer.extend(chunk)
            if len(self._buffer) < (1 << 16):
                # Likely drained the kernel buffer; parse what we have.
                return self._split()

    def recv(self) -> dict | None:
        """Blocking receive of exactly one message (None on EOF)."""
        while True:
            if not self._pending:
                self._pending.extend(self._split())
            if self._pending:
                return self._pending.pop(0)
            try:
                chunk = self.sock.recv(1 << 16)
            except OSError:
                self.closed = True
                return None
            if not chunk:
                self.closed = True
                return None
            self._buffer.extend(chunk)

    def close(self) -> None:
        """Close the underlying socket, ignoring teardown races."""
        self.closed = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass
