"""SSH-bootstrapped worker fleets (``backend="ssh:hosts.toml"``).

:class:`SSHBackend` is :class:`~repro.harness.dist.broker.QueueBackend`
with one difference: instead of spawning loopback subprocesses it
starts ``python -m repro worker --connect <broker>:<port>`` on each
host of a ``hosts.toml`` fleet over ``ssh``.  Everything else --
heartbeats, retries, re-queueing, serial degradation, the ``dist.*``
metrics -- is inherited unchanged, because to the broker a remote
worker is just another TCP peer.

``hosts.toml`` format (parsed with :mod:`tomllib`; a minimal fallback
parser covers Python 3.10)::

    [fleet]                       # defaults applied to every host
    python = "python3"
    repro_path = "/opt/repro/src" # remote PYTHONPATH entry
    fsm_cache = "/tmp/repro-fsm"  # remote REPRO_FSM_CACHE directory
    rsync_cache = true            # push the local FSM cache first

    [[hosts]]
    name = "nodeA"
    ssh = "user@nodea"            # anything `ssh` accepts as target
    workers = 4                   # worker processes on this host

    [[hosts]]
    name = "nodeB"
    ssh = "nodeb"
    workers = 2
    python = "/opt/py311/bin/python"   # per-host override of any key

**FSM-cache sharing.**  Compound-FSM synthesis must happen once per
fleet, not once per worker: when ``rsync_cache`` is on and the local
``REPRO_FSM_CACHE`` is configured, the backend runs the sweep
initializer (``warm_fsm_cache``) locally to populate the on-disk cache,
then rsyncs it to every host's ``fsm_cache`` directory before
launching.  Cache entries are salted with the generator *source
fingerprint* (see :func:`repro.core.generator._source_fingerprint`), so
:func:`validate_cache_dir` can tell fresh pickles from stale ones --
and a worker whose *code* fingerprint disagrees with the broker is
rejected at handshake regardless, which is what makes mixing results
from divergent checkouts impossible.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass
from pathlib import Path

from repro.harness.dist.broker import QueueBackend

#: Keys a host entry may override; everything else is rejected loudly.
_HOST_KEYS = {"name", "ssh", "workers", "python", "repro_path",
              "fsm_cache", "rsync_cache", "ssh_options"}

_FLEET_DEFAULTS = {
    "python": "python3",
    "repro_path": "",
    "fsm_cache": "",
    "rsync_cache": False,
    "ssh_options": ["-o", "BatchMode=yes"],
    "workers": 1,
}


class HostsError(ValueError):
    """A malformed or unusable ``hosts.toml``."""


@dataclass(frozen=True)
class HostSpec:
    """One fleet member after fleet-default merging."""

    name: str
    ssh: str
    workers: int = 1
    python: str = "python3"
    repro_path: str = ""
    fsm_cache: str = ""
    rsync_cache: bool = False
    ssh_options: tuple = ("-o", "BatchMode=yes")

    def bootstrap_command(self, address: tuple[str, int]) -> list[str]:
        """The ``ssh`` argv that starts one worker on this host."""
        env_parts = []
        if self.fsm_cache:
            env_parts.append(f"REPRO_FSM_CACHE={self.fsm_cache}")
        if self.repro_path:
            env_parts.append(f"PYTHONPATH={self.repro_path}")
        remote = " ".join(
            (["env"] + env_parts if env_parts else [])
            + [self.python, "-m", "repro", "worker",
               "--connect", f"{address[0]}:{address[1]}"])
        return ["ssh", *self.ssh_options, self.ssh, remote]

    def rsync_command(self, local_cache: str) -> list[str] | None:
        """The ``rsync`` argv that ships the FSM cache (or None)."""
        if not (self.rsync_cache and self.fsm_cache and local_cache):
            return None
        return ["rsync", "-az", "--include", "*.pickle", "--exclude", "*",
                f"{local_cache.rstrip('/')}/",
                f"{self.ssh}:{self.fsm_cache.rstrip('/')}/"]


def _parse_toml_minimal(text: str) -> dict:
    """Tiny TOML subset parser for Python < 3.11 (no tomllib).

    Supports ``[table]`` / ``[[array-of-tables]]`` headers and
    ``key = value`` lines where value is a double-quoted string, an
    integer, a boolean, or a flat array of quoted strings -- exactly
    the shapes the documented ``hosts.toml`` format uses.
    """
    import re

    def strip_comment(line: str) -> str:
        in_string = False
        for i, ch in enumerate(line):
            if ch == '"':
                in_string = not in_string
            elif ch == "#" and not in_string:
                return line[:i]
        return line

    root: dict = {}
    current: dict = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            current = {}
            root.setdefault(key, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            current = root.setdefault(key, {})
            continue
        match = re.match(r"^([A-Za-z0-9_-]+)\s*=\s*(.+)$", line)
        if not match:
            raise HostsError(f"hosts.toml line {lineno}: cannot parse "
                             f"{raw!r}")
        key, value_text = match.group(1), match.group(2).strip()
        if value_text.startswith('"') and value_text.endswith('"'):
            value: object = value_text[1:-1]
        elif value_text in ("true", "false"):
            value = value_text == "true"
        elif value_text.startswith("[") and value_text.endswith("]"):
            value = [part.strip().strip('"')
                     for part in value_text[1:-1].split(",")
                     if part.strip()]
        else:
            try:
                value = int(value_text)
            except ValueError:
                raise HostsError(
                    f"hosts.toml line {lineno}: unsupported value "
                    f"{value_text!r}") from None
        current[key] = value
    return root


def _load_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # Python 3.10: fall back to the subset parser
        return _parse_toml_minimal(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise HostsError(f"{path}: {exc}") from exc


def load_hosts(path) -> list[HostSpec]:
    """Parse ``hosts.toml`` into merged :class:`HostSpec` entries."""
    path = Path(path)
    if not path.is_file():
        raise HostsError(f"hosts file not found: {path}")
    data = _load_toml(path)
    fleet = dict(_FLEET_DEFAULTS)
    fleet_section = data.get("fleet", {})
    if not isinstance(fleet_section, dict):
        raise HostsError(f"{path}: [fleet] must be a table")
    unknown = set(fleet_section) - (_HOST_KEYS - {"name", "ssh"})
    if unknown:
        raise HostsError(f"{path}: unknown [fleet] keys {sorted(unknown)}")
    fleet.update(fleet_section)
    entries = data.get("hosts", [])
    if not entries:
        raise HostsError(f"{path}: no [[hosts]] entries")
    specs = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "ssh" not in entry:
            raise HostsError(f"{path}: [[hosts]] entry {i} needs an "
                             f"ssh = \"target\" key")
        unknown = set(entry) - _HOST_KEYS
        if unknown:
            raise HostsError(f"{path}: [[hosts]] entry {i} has unknown "
                             f"keys {sorted(unknown)}")
        merged = {**fleet, **entry}
        workers = merged.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise HostsError(f"{path}: [[hosts]] entry {i}: workers must "
                             f"be a positive integer, got {workers!r}")
        specs.append(HostSpec(
            name=str(merged.get("name", merged["ssh"])),
            ssh=str(merged["ssh"]),
            workers=workers,
            python=str(merged["python"]),
            repro_path=str(merged["repro_path"]),
            fsm_cache=str(merged["fsm_cache"]),
            rsync_cache=bool(merged["rsync_cache"]),
            ssh_options=tuple(merged["ssh_options"]),
        ))
    return specs


def validate_cache_dir(directory) -> tuple[int, int]:
    """Count (fresh, stale) FSM-cache pickles against the current
    source fingerprint -- the check that makes cache *sharing* safe:
    only ``fresh`` entries will ever be loaded by current-code
    workers."""
    from repro.harness.dist.protocol import source_fingerprint

    directory = Path(directory)
    if not directory.is_dir():
        return (0, 0)
    fingerprint = source_fingerprint()
    fresh = stale = 0
    for path in directory.glob("*.pickle"):
        if path.stem.endswith(fingerprint):
            fresh += 1
        else:
            stale += 1
    return fresh, stale


class SSHBackend(QueueBackend):
    """Queue backend whose workers are SSH-bootstrapped remote fleets."""

    name = "ssh"

    def __init__(self, hosts_file, *, host: str = "0.0.0.0", port: int = 0,
                 advertise: str | None = None, **queue_kwargs) -> None:
        self.hosts = load_hosts(hosts_file)
        total = sum(spec.workers for spec in self.hosts)
        # Remote fleets are slower to come up than loopback spawns.
        queue_kwargs.setdefault("wait_for_workers", 120.0)
        queue_kwargs.setdefault("heartbeat_timeout", 15.0)
        super().__init__(workers=total, host=host, port=port, spawn=True,
                         **queue_kwargs)
        self.advertise = advertise or _default_advertise()
        self._cache_synced = False

    # -- inspection (what the tests exercise without any SSH) ----------
    def commands(self, address: tuple[str, int]) -> dict:
        """The rsync/bootstrap argvs per host, without running them."""
        local_cache = _local_fsm_cache()
        plan = {}
        for spec in self.hosts:
            plan[spec.name] = {
                "rsync": spec.rsync_command(local_cache),
                "bootstrap": [spec.bootstrap_command(address)] * spec.workers,
            }
        return plan

    # -- QueueBackend hook ---------------------------------------------
    def _launch_workers(self, address, count: int) -> list:
        """Bootstrap the fleet (ignores ``count``: hosts.toml rules)."""
        advertise = (self.advertise, address[1])
        self._sync_fsm_cache()
        procs = []
        for spec in self.hosts:
            for _ in range(spec.workers):
                procs.append(subprocess.Popen(
                    spec.bootstrap_command(advertise),
                    stdout=subprocess.DEVNULL,
                ))
        return procs

    def _sync_fsm_cache(self) -> None:
        """Warm the local FSM cache once and rsync it to the fleet."""
        if self._cache_synced:
            return
        self._cache_synced = True
        local_cache = _local_fsm_cache()
        if not local_cache:
            return
        if self.initializer is not None:
            # Populates the local on-disk cache (REPRO_FSM_CACHE is set).
            self.initializer(*self.initargs)
        fresh, stale = validate_cache_dir(local_cache)
        self._event("cache-validated", fresh=fresh, stale=stale,
                    directory=local_cache)
        for spec in self.hosts:
            command = spec.rsync_command(local_cache)
            if command is None:
                continue
            try:
                done = subprocess.run(command, capture_output=True,
                                      timeout=120)
            except (OSError, subprocess.TimeoutExpired) as exc:
                self._event("cache-sync-failed", host=spec.name,
                            error=str(exc))
                continue
            if done.returncode != 0:
                self._event("cache-sync-failed", host=spec.name,
                            error=done.stderr.decode(errors="replace")[-500:])
            else:
                self._event("cache-synced", host=spec.name, fresh=fresh)


def _local_fsm_cache() -> str:
    """The local on-disk FSM cache directory, if configured."""
    from repro.core.generator import _disk_cache_dir

    directory = _disk_cache_dir()
    return str(directory) if directory is not None else ""


def _default_advertise() -> str:
    """Best-effort hostname remote workers can connect back to."""
    import socket

    return socket.gethostname()
