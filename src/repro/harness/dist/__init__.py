"""Pluggable execution backends for the sweep harness.

A *backend* is anything that can run a batch of independent
:class:`~repro.harness.sweep.SweepCell` units and return their results
keyed by cell -- the contract :class:`Backend` spells out.  Four
implementations ship:

- :class:`~repro.harness.dist.local.SerialBackend` -- the plain
  in-process loop (always available, the degradation target of every
  other backend).
- :class:`~repro.harness.dist.local.ProcessPoolBackend` -- the
  ``multiprocessing`` pool that PR 1 introduced, refactored behind the
  interface.
- :class:`~repro.harness.dist.broker.QueueBackend` -- a fault-tolerant
  work queue: a broker thread in the sweep process hands cells to N
  worker processes over TCP (JSON-line framed), with per-cell timeout,
  bounded retry with exponential backoff, heartbeat-based dead-worker
  detection, orphan re-queueing and graceful degradation to the serial
  path when no workers remain.  Workers are either spawned locally
  (``QueueBackend(workers=2)``) or started by hand anywhere that can
  reach the broker: ``python -m repro worker --connect host:port``.
- :class:`~repro.harness.dist.ssh.SSHBackend` -- bootstraps
  ``repro worker`` fleets on remote hosts from a ``hosts.toml`` and
  shares the on-disk compound-FSM cache (``REPRO_FSM_CACHE``) so
  synthesis happens once per fleet.

``SweepRunner(backend=...)`` (or ``--backend`` / ``REPRO_BACKEND``)
selects one; :func:`resolve_backend` parses the string spellings.  See
``docs/DISTRIBUTED.md`` for the backend matrix and failure semantics.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

BACKEND_ENV = "REPRO_BACKEND"


@runtime_checkable
class Backend(Protocol):
    """The execution-backend contract the sweep runner programs against.

    ``submit`` runs every cell and returns ``{cell.key: result}``; a
    cell that ultimately failed maps to a
    :class:`~repro.harness.sweep.CellFailure` (the *runner* decides
    whether captured failures are returned or raised).  ``name`` is the
    mode string recorded in ``SweepRunner.last_mode``.
    """

    name: str

    def submit(self, cells, progress=None) -> dict:
        """Run ``cells``; return results keyed by cell, in cell order."""
        ...


def resolve_backend(spec, *, jobs=None, initializer=None, initargs=()):
    """Turn a backend spec into a :class:`Backend` instance.

    Accepted spellings (the ``--backend`` flag / ``REPRO_BACKEND``):

    - ``"serial"``            -- in-process loop, one cell at a time.
    - ``"local"``             -- process pool with ``jobs`` workers.
    - ``"queue"``             -- broker + ``jobs`` spawned loopback workers.
    - ``"queue:N"``           -- broker + N spawned loopback workers.
    - ``"queue:HOST:PORT"``   -- broker listening on HOST:PORT for
      externally started ``repro worker --connect`` processes.
    - ``"ssh:HOSTS.toml"``    -- broker + SSH-bootstrapped remote fleet.

    A :class:`Backend` instance passes through unchanged.
    """
    if spec is None:
        raise ValueError("backend spec is None; pass a string or Backend")
    if not isinstance(spec, str):
        if isinstance(spec, Backend):
            return spec
        raise TypeError(f"backend must be a str or Backend, got {spec!r}")

    from repro.harness.dist.broker import QueueBackend
    from repro.harness.dist.local import ProcessPoolBackend, SerialBackend
    from repro.harness.dist.ssh import SSHBackend

    text = spec.strip()
    head, _, rest = text.partition(":")
    head = head.lower()
    if head == "serial" and not rest:
        return SerialBackend(initializer=initializer, initargs=initargs)
    if head == "local" and not rest:
        return ProcessPoolBackend(jobs=jobs, initializer=initializer,
                                  initargs=initargs)
    if head == "queue":
        if not rest:
            return QueueBackend(workers=jobs, initializer=initializer,
                                initargs=initargs)
        parts = rest.split(":")
        if len(parts) == 1:
            try:
                workers = int(parts[0])
            except ValueError:
                raise ValueError(
                    f"bad queue backend spec {text!r}; expected queue, "
                    f"queue:N or queue:HOST:PORT") from None
            return QueueBackend(workers=workers, initializer=initializer,
                                initargs=initargs)
        if len(parts) == 2:
            host, port_text = parts
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"bad queue backend port in {text!r}") from None
            return QueueBackend(workers=None, host=host or "127.0.0.1",
                                port=port, spawn=False,
                                initializer=initializer, initargs=initargs)
        raise ValueError(f"bad queue backend spec {text!r}")
    if head == "ssh" and rest:
        return SSHBackend(rest, initializer=initializer, initargs=initargs)
    raise ValueError(
        f"unknown backend {text!r}; expected serial, local, queue[:N], "
        f"queue:HOST:PORT or ssh:HOSTS.toml")


__all__ = [
    "BACKEND_ENV",
    "Backend",
    "resolve_backend",
]
