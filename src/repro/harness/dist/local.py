"""In-process execution backends (serial loop and process pool).

These are the PR 1 sweep paths refactored behind the
:class:`~repro.harness.dist.Backend` interface.  Both capture a cell
exception as a :class:`~repro.harness.sweep.CellFailure` *result*
instead of letting it unwind the whole sweep -- in the pool path an
uncaught worker exception used to abort ``imap_unordered`` mid-batch,
discarding every other cell's finished work; now each cell resolves
independently and the runner decides at the end whether captured
failures raise or return (``capture_errors``).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.harness.sweep import CellFailure


def _run_cell(payload):
    """Pool worker entry: run one cell, tagging the result with its
    index and wall time (measured in the worker, so the parent's
    progress report shows real per-cell cost, not queueing delay).
    A cell exception becomes a :class:`CellFailure` result -- it must
    not poison the pool's result stream."""
    index, fn, kwargs = payload
    t0 = time.perf_counter()
    try:
        result = fn(**kwargs)
    except Exception as exc:
        result = CellFailure.from_exception(exc)
    return index, time.perf_counter() - t0, result


class SerialBackend:
    """Plain in-process loop; the degradation target of every backend."""

    name = "serial"

    def __init__(self, initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()) -> None:
        self.initializer = initializer
        self.initargs = initargs

    def submit(self, cells, progress=None) -> dict:
        """Run every cell in order; exceptions become CellFailures."""
        cells = list(cells)
        if self.initializer is not None:
            self.initializer(*self.initargs)
        results: dict = {}
        total = len(cells)
        for done, cell in enumerate(cells, start=1):
            t0 = time.perf_counter()
            try:
                results[cell.key] = cell.fn(**cell.kwargs)
            except Exception as exc:
                results[cell.key] = CellFailure.from_exception(exc)
            if progress is not None:
                progress(done, total, cell.key, time.perf_counter() - t0)
        return results


class ProcessPoolBackend:
    """``multiprocessing`` pool fan-out (one machine, N processes).

    Raises ``OSError``/``ImportError`` when the platform cannot spawn a
    pool at all -- the sweep runner catches those and degrades to
    :class:`SerialBackend`; *cell* failures never surface that way.
    """

    name = "parallel"

    def __init__(self, jobs: int | None = None,
                 start_method: str | None = None,
                 initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()) -> None:
        from repro.harness.sweep import resolve_jobs

        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method
        self.initializer = initializer
        self.initargs = initargs

    def submit(self, cells, progress=None) -> dict:
        """Fan cells over the pool; results keyed in cell order."""
        import multiprocessing

        cells = list(cells)
        payloads = [(i, cell.fn, dict(cell.kwargs))
                    for i, cell in enumerate(cells)]
        context = multiprocessing.get_context(self.start_method)
        total = len(cells)
        done = 0
        results: list = [None] * len(cells)
        filled = [False] * len(cells)
        with context.Pool(
            processes=min(self.jobs, len(cells)),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            for index, wall, value in pool.imap_unordered(_run_cell, payloads):
                results[index] = value
                filled[index] = True
                done += 1
                if progress is not None:
                    progress(done, total, cells[index].key, wall)
        if not all(filled):  # pragma: no cover - pool never drops tasks
            raise OSError("process pool dropped sweep cells")
        return {cell.key: results[i] for i, cell in enumerate(cells)}
