"""Cell-assignment bookkeeping for the queue broker.

Pure state machine, deliberately free of sockets and wall-clock reads:
every method takes ``now`` as a float argument, so the broker drives it
with ``time.monotonic()`` while the property-based tests drive it with
a synthetic clock and random event orders.  The invariants the tests
enforce (see ``tests/test_dist.py``):

- every cell is resolved exactly once (a result or a permanent
  failure), no matter how workers join, die, time out or race;
- an accepted result is never overwritten -- late/stale deliveries of
  a re-queued cell are rejected;
- a cell is never in flight on two workers at the same time;
- retry counts are bounded by ``max_retries`` and re-queued cells honor
  exponential backoff before becoming assignable again.

States of one cell::

    PENDING --assign--> INFLIGHT --complete--> DONE
       ^                   |  |
       |   retry/backoff   |  +--fail (attempts left)---> PENDING
       +-------------------+--fail (attempts exhausted)-> FAILED
                              worker died --------------> PENDING
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: fail() / on_timeout outcomes.
RETRY = "retry"
GAVE_UP = "gave-up"
STALE = "stale"


@dataclass
class _CellState:
    index: int
    attempts: int = 0          # assignments handed out so far
    worker: object = None      # holder while INFLIGHT
    deadline: float | None = None
    ready_at: float = 0.0      # backoff gate while PENDING
    done: bool = False
    failure: object = None     # permanent failure record
    history: list = field(default_factory=list)  # (kind, worker) per event


class CellScheduler:
    """Assignment, retry and orphan bookkeeping for ``n_cells`` cells.

    The broker owns the sockets; this class owns *which cell runs
    where*, and is the single source of truth for completion.
    """

    def __init__(self, n_cells: int, *, max_retries: int = 2,
                 backoff_base: float = 0.05, cell_timeout: float | None = None,
                 backoff_cap: float = 30.0) -> None:
        if n_cells < 0:
            raise ValueError(f"n_cells must be >= 0, got {n_cells}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.cell_timeout = cell_timeout
        self._cells = [_CellState(i) for i in range(n_cells)]
        self._pending = list(range(n_cells))  # FIFO of assignable indices
        self._inflight: dict[int, object] = {}  # index -> worker

    # -- introspection -------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def attempts(self, index: int) -> int:
        """Assignments handed out for one cell so far."""
        return self._cells[index].attempts

    def is_done(self, index: int) -> bool:
        """True once a result for ``index`` has been accepted."""
        return self._cells[index].done

    def failure(self, index: int):
        """The permanent failure record for ``index`` (or None)."""
        return self._cells[index].failure

    def inflight(self) -> dict:
        """Snapshot of ``{index: worker}`` currently assigned."""
        return dict(self._inflight)

    def unfinished(self) -> list[int]:
        """Indices not yet resolved (pending + in flight), cell order."""
        return [c.index for c in self._cells
                if not c.done and c.failure is None]

    def all_resolved(self) -> bool:
        """True once every cell is done or permanently failed."""
        return all(c.done or c.failure is not None for c in self._cells)

    def resolved_count(self) -> int:
        """How many cells are done or permanently failed."""
        return sum(1 for c in self._cells if c.done or c.failure is not None)

    def next_ready_at(self, now: float) -> float | None:
        """Earliest instant a backoff-gated pending cell becomes
        assignable (None when nothing is waiting on backoff)."""
        waiting = [self._cells[i].ready_at for i in self._pending
                   if self._cells[i].ready_at > now]
        return min(waiting) if waiting else None

    def next_deadline(self) -> float | None:
        """Earliest in-flight deadline (None when nothing can expire)."""
        deadlines = [self._cells[i].deadline for i in self._inflight
                     if self._cells[i].deadline is not None]
        return min(deadlines) if deadlines else None

    # -- assignment ----------------------------------------------------
    def next_cells(self, worker, now: float,
                   limit: int) -> list[tuple[int, int]]:
        """Assign up to ``limit`` ready cells to ``worker`` in one batch.

        Returns ``(index, attempt)`` pairs in assignment order (may be
        empty when nothing is assignable: all cells resolved, in
        flight, or backoff-gated).  FIFO over ready cells keeps retried
        cells from starving.  Because the worker runs a batch serially,
        per-cell deadlines are staggered -- the *i*-th cell of the
        batch gets ``now + cell_timeout * (i + 1)`` -- so a chunked
        assignment is not spuriously timed out while earlier cells of
        the same batch are still running.
        """
        assigned: list[tuple[int, int]] = []
        slot = 0
        while slot < len(self._pending) and len(assigned) < limit:
            index = self._pending[slot]
            cell = self._cells[index]
            if cell.ready_at > now:
                slot += 1
                continue
            del self._pending[slot]
            cell.attempts += 1
            cell.worker = worker
            cell.deadline = (
                now + self.cell_timeout * (len(assigned) + 1)
                if self.cell_timeout is not None else None)
            self._inflight[index] = worker
            assigned.append((index, cell.attempts))
        return assigned

    def next_cell(self, worker, now: float) -> tuple[int, int] | None:
        """Assign the single next ready cell to ``worker``.

        Returns ``(index, attempt)`` or None when nothing is currently
        assignable; equivalent to ``next_cells(worker, now, 1)``.
        """
        batch = self.next_cells(worker, now, 1)
        return batch[0] if batch else None

    # -- resolution ----------------------------------------------------
    def _is_current(self, worker, index: int, attempt: int) -> bool:
        cell = self._cells[index]
        return (self._inflight.get(index) is worker
                and cell.attempts == attempt and not cell.done)

    def complete(self, worker, index: int, attempt: int) -> bool:
        """Accept a result delivery; False for stale/duplicate ones.

        Only the *current* assignment may complete a cell: a worker the
        broker already gave up on (timeout, presumed-dead) may still
        deliver, and that delivery must not overwrite whatever the
        retry produced.
        """
        if not (0 <= index < len(self._cells)):
            return False
        if not self._is_current(worker, index, attempt):
            return False
        cell = self._cells[index]
        cell.done = True
        cell.worker = None
        cell.deadline = None
        del self._inflight[index]
        cell.history.append(("done", worker))
        return True

    def fail(self, worker, index: int, attempt: int, now: float,
             failure=None, kind: str = "error") -> str:
        """Record a failed attempt; decide retry vs give-up.

        Returns :data:`RETRY` (cell re-queued with backoff),
        :data:`GAVE_UP` (attempts exhausted; ``failure`` recorded as the
        permanent outcome) or :data:`STALE` (delivery for a superseded
        assignment -- ignored).
        """
        if not (0 <= index < len(self._cells)):
            return STALE
        if not self._is_current(worker, index, attempt):
            return STALE
        cell = self._cells[index]
        cell.worker = None
        cell.deadline = None
        del self._inflight[index]
        cell.history.append((kind, worker))
        if cell.attempts > self.max_retries:
            cell.failure = failure if failure is not None else kind
            return GAVE_UP
        cell.ready_at = now + min(
            self.backoff_cap, self.backoff_base * (2 ** (cell.attempts - 1)))
        self._pending.append(cell.index)
        return RETRY

    def worker_lost(self, worker, now: float) -> tuple[list[int], list[int]]:
        """A worker died: orphaned cells are re-queued (or given up).

        Returns ``(requeued, gave_up)`` index lists.  A worker death
        still consumes an attempt -- a poison cell that crashes its
        worker must not ping-pong forever -- but orphans are re-queued
        *without* backoff: the cell itself is not known to be slow.
        """
        requeued, gave_up = [], []
        for index, holder in list(self._inflight.items()):
            if holder is not worker:
                continue
            cell = self._cells[index]
            cell.worker = None
            cell.deadline = None
            del self._inflight[index]
            cell.history.append(("orphaned", worker))
            if cell.attempts > self.max_retries:
                cell.failure = "worker died"
                gave_up.append(index)
            else:
                cell.ready_at = now
                self._pending.append(index)
                requeued.append(index)
        return requeued, gave_up

    def expired(self, now: float) -> list[tuple[int, object, int]]:
        """In-flight assignments past their per-cell deadline.

        Returns ``(index, worker, attempt)`` tuples; the broker decides
        what to do with the worker and routes the cell back through
        :meth:`fail` with ``kind="timeout"``.
        """
        hits = []
        for index, worker in self._inflight.items():
            cell = self._cells[index]
            if cell.deadline is not None and now >= cell.deadline:
                hits.append((index, worker, cell.attempts))
        return hits
