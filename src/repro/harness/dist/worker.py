"""The distributed sweep worker (``python -m repro worker``).

A worker is deliberately dumb: connect, present the source fingerprint,
run whatever cells the broker sends -- singly (``cell``) or as a
chunked batch (``cells``), always serially, streaming one reply per
cell -- until told to shut down (or the connection dies).  All scheduling intelligence -- retry,
backoff, timeouts, re-queueing -- lives broker-side, so a worker can be
killed at any instant without losing anything but its current attempt.

Liveness: a daemon thread sends a ``heartbeat`` frame every
``heartbeat_interval`` seconds (the broker names the interval in its
``welcome``) *while the main thread is busy inside a cell*, which is
what lets the broker tell "slow cell on a live worker" apart from
"worker is gone".  When the heartbeat thread finds the socket dead, the
whole process exits immediately -- a worker whose broker vanished has
nothing left to do, even mid-cell.

Telemetry (:mod:`repro.obs.telemetry`): when the broker's ``welcome``
carries ``telemetry: true``, the worker enables the process-global
:class:`~repro.obs.telemetry.Telemetry` collector and ships frames at
three points -- a light flight-only frame at cell start (SIGKILL
evidence), a full frame right before every ``result``/``error`` (so
the broker's fleet view is exact once the sweep resolves), and a full
frame from the heartbeat thread whenever state is dirty (long cells).
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.harness.dist import protocol
from repro.obs.telemetry import telemetry

#: Exit codes (also the CLI contract of ``repro worker``).
EXIT_OK = 0
EXIT_CONNECT = 1   # could not reach the broker
EXIT_REJECTED = 2  # broker refused the handshake (fingerprint mismatch)
EXIT_ORPHANED = 3  # broker connection died mid-run


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` connect spec."""
    host, _, port_text = text.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"connect address must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in connect address {text!r}") from None
    return host, port


def _heartbeat_loop(channel: protocol.LineChannel, interval: float,
                    stop: threading.Event, tele=None) -> None:
    """Side-thread keepalive; exits the process when the broker is gone.

    ``os._exit`` (not ``sys.exit``) because the main thread may be deep
    inside a long-running cell and must not keep burning CPU for a
    broker that will never collect the result.  With telemetry enabled
    a full frame piggybacks on the beat whenever worker state is dirty,
    so long cells still stream their metrics home periodically.
    """
    while not stop.wait(interval):
        try:
            channel.send({"type": "heartbeat"})
            if tele is not None:
                frame = tele.frame()
                if frame is not None:
                    channel.send(frame)
        except OSError:
            os._exit(EXIT_ORPHANED)


def run_worker(address: tuple[str, int], *,
               heartbeat_interval: float = 0.5,
               fingerprint: str | None = None,
               connect_timeout: float = 10.0) -> int:
    """Serve cells from the broker at ``address`` until shutdown.

    Returns a process exit code (see the ``EXIT_*`` constants).
    ``fingerprint`` overrides the presented source fingerprint -- only
    tests exercising the broker's mismatch rejection want that.
    """
    try:
        sock = socket.create_connection(address, timeout=connect_timeout)
    except OSError as exc:
        print(f"worker: cannot connect to {address[0]}:{address[1]}: {exc}",
              flush=True)
        return EXIT_CONNECT
    sock.settimeout(None)
    channel = protocol.LineChannel(sock)
    channel.send({
        "type": "hello",
        "fingerprint": (protocol.source_fingerprint()
                        if fingerprint is None else fingerprint),
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "version": protocol.PROTOCOL_VERSION,
    })
    welcome = channel.recv()
    if welcome is None or welcome.get("type") == "reject":
        reason = (welcome or {}).get("reason", "connection closed")
        print(f"worker: rejected by broker: {reason}", flush=True)
        channel.close()
        return EXIT_REJECTED
    if welcome.get("type") != "welcome":
        print(f"worker: unexpected handshake reply "
              f"{welcome.get('type')!r}", flush=True)
        channel.close()
        return EXIT_REJECTED

    init = welcome.get("init", "")
    if init:
        initializer, initargs = protocol.unpack(init)
        initializer(*initargs)

    tele = None
    if welcome.get("telemetry"):
        tele = telemetry()
        tele.enable(worker=f"{socket.gethostname()}:{os.getpid()}")
        tele.flight.record("connect", broker=f"{address[0]}:{address[1]}")

    stop = threading.Event()
    interval = float(welcome.get("heartbeat_interval", heartbeat_interval))
    beat = threading.Thread(
        target=_heartbeat_loop, args=(channel, interval, stop, tele),
        name="repro-worker-heartbeat", daemon=True)
    beat.start()

    def execute(item: dict) -> None:
        """Run one cell and send its result/error frame (may raise OSError)."""
        index = item.get("id", -1)
        attempt = item.get("attempt", 1)
        if tele is not None:
            tele.cell_start(index, key=item.get("key"), attempt=attempt)
            light = tele.frame(full=False)
            if light is not None:
                channel.send(light)
        t0 = time.perf_counter()
        try:
            fn, kwargs = protocol.unpack(item.get("payload", ""))
            value = fn(**kwargs)
            wall = time.perf_counter() - t0
            reply = {"type": "result", "id": index, "attempt": attempt,
                     "wall": wall,
                     "payload": protocol.pack(value)}
            if tele is not None:
                tele.cell_finish(True, wall)
        except Exception as exc:
            import traceback

            wall = time.perf_counter() - t0
            reply = {"type": "error", "id": index, "attempt": attempt,
                     "wall": wall,
                     "exc_type": type(exc).__name__,
                     "exc_msg": str(exc),
                     "traceback": traceback.format_exc()}
            if tele is not None:
                tele.cell_finish(False, wall, error=str(exc))
                reply["flight"] = tele.flight_dump()
        if tele is not None:
            # The full frame ships on the same stream *before* the
            # reply, so the broker's fleet view is exact the moment
            # the last cell resolves.
            frame = tele.frame()
            if frame is not None:
                channel.send(frame)
        channel.send(reply)

    try:
        while True:
            message = channel.recv()
            if message is None or message.get("type") == "shutdown":
                return EXIT_OK
            kind = message.get("type")
            try:
                if kind == "cell":
                    execute(message)
                elif kind == "cells":
                    # Chunked assignment: run serially, stream one
                    # reply per cell so the broker accounts per-cell.
                    for item in message.get("items", []):
                        execute(item)
                # Other frames: tolerate (forward compatibility).
            except OSError:
                return EXIT_ORPHANED
    finally:
        stop.set()
        channel.close()
