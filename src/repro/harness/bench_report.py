"""Benchmark trajectory report: latest-vs-previous deltas with a gate.

Every benchmark module appends one flat JSON record per run to its
``BENCH_*.json`` trajectory file (a JSON array).  ``python -m repro
bench report`` reads all of them, flattens nested numeric dicts to
dotted keys, and prints the delta between the two most recent records
per file.

Regression direction is inferred from the field name -- the repo's
benchmark records follow a consistent vocabulary:

- *up is worse*: wall-clock fields (``*_s`` / ``*_seconds`` path
  segments) and normalized costs (``ratio*``, ``*_over_*``,
  ``*overhead*``);
- *down is worse*: throughputs (``*per_s*``, ``*per_sec*``,
  ``speedup*``);
- anything else (counts, metadata) is *neutral*: reported when it
  changed, never flagged.

A directional field whose worse-direction change exceeds ``threshold``
percent is a regression; the CI job runs this advisorily so a noisy
runner cannot block a merge, but the report makes the drift visible.
"""

from __future__ import annotations

import json
import os

#: The benchmark trajectory files the report covers.
BENCH_FILES = (
    "BENCH_dist.json",
    "BENCH_engine.json",
    "BENCH_explore.json",
    "BENCH_fuzz.json",
    "BENCH_lint.json",
    "BENCH_obs.json",
    "BENCH_sim.json",
    "BENCH_sweep.json",
)

#: Fields that identify the run rather than measure it.
_METADATA = frozenset({"timestamp", "cpu_count"})


def _flatten(record: dict, prefix: str = "") -> dict:
    """Flatten nested dicts to dotted keys, keeping numeric leaves."""
    flat: dict = {}
    for key, value in record.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = value
    return flat


def direction(field: str) -> int:
    """Regression direction of a field: +1 up-is-worse, -1 down-is-worse,
    0 neutral (never flagged)."""
    lowered = field.lower()
    if field in _METADATA:
        return 0
    if ("per_s" in lowered or "per_sec" in lowered
            or lowered.startswith("speedup") or ".speedup" in lowered):
        return -1
    if ("overhead" in lowered or lowered.startswith("ratio")
            or "_over_" in lowered):
        return 1
    if any(seg.endswith("_s") or seg.endswith("_seconds")
           for seg in lowered.split(".")):
        return 1
    return 0


def load_trajectory(path: str) -> list[dict]:
    """Load one BENCH_*.json array (missing file -> empty list)."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return data


def compare(previous: dict, latest: dict) -> list[dict]:
    """Field-by-field deltas between two flattened records.

    Returns one row per field present in both: ``{field, prev, last,
    pct, direction, worse}`` where ``pct`` is the relative change and
    ``worse`` the change along the field's regression direction (both
    in percent; ``None`` when the previous value was 0).
    """
    rows = []
    for field in sorted(set(previous) & set(latest)):
        prev, last = previous[field], latest[field]
        pct = 100.0 * (last - prev) / prev if prev else None
        sign = direction(field)
        worse = pct * sign if (pct is not None and sign) else None
        rows.append({"field": field, "prev": prev, "last": last,
                     "pct": pct, "direction": sign, "worse": worse})
    return rows


def bench_report(root: str = ".", threshold: float = 10.0,
                 files=BENCH_FILES) -> tuple[str, list[dict]]:
    """Build the report text and the list of flagged regressions.

    ``threshold`` is the worse-direction percentage above which a
    directional field is flagged.  Returns ``(text, regressions)``;
    an empty ``regressions`` list means the gate passes.
    """
    lines: list[str] = []
    regressions: list[dict] = []
    for name in files:
        path = os.path.join(root, name)
        records = load_trajectory(path)
        if not records:
            lines.append(f"{name}: no records")
            continue
        latest = _flatten(records[-1])
        stamp = records[-1].get("timestamp", "?")
        if len(records) < 2:
            lines.append(f"{name}: 1 record ({stamp}); nothing to diff")
            continue
        lines.append(f"{name}: {len(records)} records, latest {stamp}")
        for row in compare(_flatten(records[-2]), latest):
            if row["direction"] == 0:
                continue
            pct = row["pct"]
            delta = f"{pct:+.1f}%" if pct is not None else "n/a (prev=0)"
            flag = ""
            if row["worse"] is not None and row["worse"] > threshold:
                flag = f"  << REGRESSION (>{threshold:g}%)"
                regressions.append({"file": name, **row})
            arrow = "down-is-worse" if row["direction"] < 0 else ""
            note = f" [{arrow}]" if arrow and flag else ""
            lines.append(f"  {row['field']:<44} {row['prev']:>10.4g} "
                         f"-> {row['last']:>10.4g}  {delta}{note}{flag}")
    if regressions:
        lines.append(f"{len(regressions)} regression(s) beyond "
                     f"{threshold:g}% -- see flagged rows above")
    else:
        lines.append(f"no regressions beyond {threshold:g}%")
    return "\n".join(lines), regressions
