"""Tables I-III of the paper, regenerated from the implementation."""

from __future__ import annotations

from repro.core.generator import generate
from repro.core.translation import format_table
from repro.protocols.messages import CXL_MESSAGE_EQUIVALENCE
from repro.sim.config import SystemConfig


def table1() -> str:
    """Table I: CXL.mem messages and their MESI equivalents."""
    lines = ["Table I: CXL.mem coherence messages and MESI equivalents",
             f"{'Message':<12}{'Dir.':<6}{'MESI Eq.':<10}Description"]
    for message, direction, mesi, description in CXL_MESSAGE_EQUIVALENCE:
        lines.append(f"{message:<12}{direction:<6}{mesi:<10}{description}")
    return "\n".join(lines)


def table2(local: str = "MESI", global_: str = "CXL", paper_fragment: bool = True) -> str:
    """Table II: the generated C3 translation table.

    With ``paper_fragment`` only the rows for incoming CXL-directory
    messages in owner states are shown -- the fragment printed in the
    paper; otherwise the full table is emitted.
    """
    compound = generate(local, global_)
    rows = compound.rows
    if paper_fragment:
        rows = [row for row in rows
                if row.message.startswith("BISnp") and row.state[1] == "M"]
    title = f"Table II: C3 translation table fragment ({compound.name})"
    return format_table(rows, title=title)


def table3(config: SystemConfig | None = None) -> str:
    """Table III: the simulated system parameters."""
    config = config or SystemConfig()
    cluster = config.clusters[0]
    rows = [
        ("Cores", f"{config.total_cores} cores, {config.freq_ghz:g} GHz, "
                  f"window {config.core_window}, SB {config.store_buffer_entries}"),
        ("L1 cache", f"{cluster.l1_bytes // 1024} KiB, {cluster.l1_assoc}-way, "
                     f"private, LRU, {cluster.l1_latency_cycles}-cycle latency"),
        ("LLC / CXL$", f"{cluster.llc_bytes // (1024 * 1024)} MiB, "
                       f"{cluster.llc_assoc}-way, shared, inclusive, LRU"),
        ("Intra-cluster", f"point-to-point, {config.intra_flit_bytes} B flits, "
                          f"{config.intra_router_cycles}-cycle router, "
                          f"{config.intra_link_cycles}-cycle links"),
        ("Cross-cluster", f"star, {config.cross_flit_bytes} B flits, "
                          f"{config.cross_router_cycles}-cycle router, "
                          f"{config.cross_link_ns:g} ns links, "
                          f"{config.cross_jitter_ns:g} ns jitter"),
        ("CXL memory", f"DDR5, 1 channel, {config.mem_latency_ns:g} ns latency"),
        ("Protocols", f"{config.combo_name}"),
    ]
    width = max(len(name) for name, _ in rows) + 2
    lines = ["Table III: simulated system parameters"]
    lines += [f"{name:<{width}}{value}" for name, value in rows]
    return "\n".join(lines)
