"""Experiment drivers regenerating every table and figure of the paper."""

from repro.harness.experiments import (
    run_workload,
    figure9,
    figure10,
    figure11,
    table4,
)
from repro.harness.sweep import (
    CellFailure,
    SweepCell,
    SweepCellError,
    SweepRunner,
    resolve_jobs,
    run_cells,
)
from repro.harness.tables import table1, table2, table3

__all__ = [
    "run_workload",
    "figure9",
    "figure10",
    "figure11",
    "table4",
    "table1",
    "table2",
    "table3",
    "CellFailure",
    "SweepCell",
    "SweepCellError",
    "SweepRunner",
    "resolve_jobs",
    "run_cells",
]
