"""Parallel sweep execution substrate.

Every paper figure is a sweep over independent simulation cells --
(workload x protocol combo x MCM x seed) -- that share no state: each
cell builds its own :class:`~repro.sim.system.System` from a config and
a seed.  :class:`SweepRunner` fans those cells out over an execution
*backend* while keeping the *results* keyed by cell, so any backend's
sweep is bit-identical to the serial one regardless of completion
order.

Backends (see :mod:`repro.harness.dist` and ``docs/DISTRIBUTED.md``):

- the default local process pool (``jobs`` workers, this machine),
- ``backend="serial"`` -- the plain in-process loop,
- ``backend="queue[:N]"`` -- a fault-tolerant TCP work queue with N
  spawned loopback workers (or externally launched
  ``python -m repro worker --connect host:port`` processes),
- ``backend="ssh:hosts.toml"`` -- an SSH-bootstrapped remote fleet.

Design constraints (and how they are met):

- **Spawn safety.**  Cell functions must be module-level callables and
  cell kwargs picklable values; both are verified up front with a
  pre-flight ``pickle.dumps`` so a bad cell degrades to the serial path
  instead of wedging the pool's task-handler thread.
- **Determinism.**  Results are stored by cell key (never by completion
  order) and every cell carries its own seed, so
  ``SweepRunner(jobs=N).map(cells) == SweepRunner(jobs=1).map(cells)``
  for any ``N`` -- and equally for the queue backend.
- **Per-cell failure isolation.**  A cell exception is captured as a
  :class:`CellFailure` instead of aborting the batch mid-flight; after
  every cell resolved, the runner raises :class:`SweepCellError`
  (listing all failures, completed results attached) unless
  ``capture_errors=True`` asked for the failures in the result dict.
- **Graceful fallback.**  ``jobs=1``, a single cell, an unpicklable
  cell, or an OS that cannot spawn processes all fall back to a plain
  in-process loop.  ``runner.last_mode`` records which path ran.

Knobs:

- ``REPRO_JOBS`` (or the ``--jobs`` CLI flag / ``jobs=`` keyword):
  worker count; defaults to ``os.cpu_count()``; ``1`` forces the
  serial path.
- ``REPRO_BACKEND`` (or ``--backend`` / ``backend=``): execution
  backend spec; see :func:`repro.harness.dist.resolve_backend`.
- ``REPRO_MP_START``: multiprocessing start method (``fork`` /
  ``spawn`` / ``forkserver``); defaults to the platform default.

See ``docs/PERFORMANCE.md`` for measured numbers.
"""

from __future__ import annotations

import os
import pickle
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

JOBS_ENV = "REPRO_JOBS"
START_METHOD_ENV = "REPRO_MP_START"


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``fn`` must be a module-level callable (so it pickles by reference
    under the spawn start method) and ``kwargs`` picklable values; the
    runner calls ``fn(**kwargs)`` and files the return value under
    ``key``.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellFailure:
    """The captured outcome of a cell that could not produce a result.

    Exceptions are flattened to strings (type name, message, formatted
    traceback) so a failure crosses process and host boundaries exactly
    like a result would.  ``kind`` distinguishes the failure path:
    ``"error"`` (the cell raised), ``"timeout"`` (queue backend gave up
    waiting) or ``"worker died"`` (orphaned past the retry budget).
    ``attempts`` counts how many times the cell was tried in total.
    ``flight`` is the victim worker's flight-recorder dump (a tuple of
    plain event dicts, see :mod:`repro.obs.flight`) when the queue
    backend had one -- the postmortem for cells whose worker raised,
    timed out or was killed outright.
    """

    exc_type: str
    message: str
    traceback: str = ""
    kind: str = "error"
    attempts: int = 1
    flight: tuple = ()

    @classmethod
    def from_exception(cls, exc: BaseException, kind: str = "error",
                       attempts: int = 1) -> "CellFailure":
        """Flatten a live exception into a portable failure record."""
        return cls(
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__)),
            kind=kind,
            attempts=attempts,
        )

    def retried(self, attempts: int) -> "CellFailure":
        """Copy of this failure with the final attempt count stamped."""
        return CellFailure(self.exc_type, self.message, self.traceback,
                           self.kind, attempts, self.flight)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.exc_type}: {self.message}"


class SweepCellError(RuntimeError):
    """One or more cells failed after every cell was given its chance.

    ``failures`` maps cell key -> :class:`CellFailure`; ``results``
    holds the successful cells, so a caller that wants partial output
    after a failure can still get it.
    """

    def __init__(self, failures: dict, results: dict) -> None:
        self.failures = failures
        self.results = results
        preview = "; ".join(
            f"{key}: {failure}" for key, failure
            in list(failures.items())[:3])
        more = "" if len(failures) <= 3 else f" (+{len(failures) - 3} more)"
        super().__init__(
            f"{len(failures)} of {len(failures) + len(results)} sweep "
            f"cells failed: {preview}{more}")


@dataclass(frozen=True)
class CellOutput:
    """A sweep-cell return value paired with its per-cell metric rollup.

    Cell functions that gather observability data return one of these;
    :func:`split_metrics` separates the plain values (what the figure
    machinery consumes) from the rollups (what ``--obs`` reports).
    """

    value: Any
    metrics: Any = None


def split_metrics(results: Mapping[Hashable, Any]) -> tuple[dict, dict]:
    """Split a sweep result map into ``(values, rollups)``.

    Plain results pass through unchanged with no rollup entry;
    :class:`CellOutput` results are unpacked.  The values dict always
    has the same keys as the input, so callers are agnostic to whether
    the sweep ran with observability on.
    """
    values: dict = {}
    rollups: dict = {}
    for key, result in results.items():
        if isinstance(result, CellOutput):
            values[key] = result.value
            if result.metrics is not None:
                rollups[key] = result.metrics
        else:
            values[key] = result
    return values, rollups


class SweepRunner:
    """Fan independent sweep cells out over an execution backend.

    Results come back as ``{cell.key: fn(**kwargs)}`` in the order the
    cells were given, independent of which worker finished first -- the
    property that keeps parallel (and distributed) figure regeneration
    bit-identical to the serial path.
    """

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        progress: Callable[[int, int, Hashable, float], None] | None = None,
        backend=None,
        capture_errors: bool = False,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.start_method = (
            start_method
            or os.environ.get(START_METHOD_ENV, "").strip()
            or None
        )
        self.initializer = initializer
        self.initargs = initargs
        #: Optional callback ``progress(done, total, key, wall_seconds)``
        #: fired as each cell completes (in completion order).
        self.progress = progress
        #: Execution backend: None for the built-in local pool, a spec
        #: string (``"serial"``, ``"queue:2"``, ``"ssh:hosts.toml"``,
        #: see :func:`repro.harness.dist.resolve_backend`) or a Backend
        #: instance.  Defaults to the ``REPRO_BACKEND`` env knob.
        if backend is None:
            from repro.harness.dist import BACKEND_ENV

            backend = os.environ.get(BACKEND_ENV, "").strip() or None
        self.backend = backend
        #: Return :class:`CellFailure` objects in the result dict
        #: instead of raising :class:`SweepCellError` at the end.
        self.capture_errors = capture_errors
        #: Backend name after the last map() call ("serial", "parallel",
        #: "queue", "ssh").
        self.last_mode: str | None = None
        #: The exception that forced a fallback to serial, if any.
        self.last_fallback: BaseException | None = None

    # ------------------------------------------------------------------
    def map(self, cells: Iterable[SweepCell]) -> dict:
        """Run every cell; return ``{key: result}`` keyed deterministically."""
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            seen, dupes = set(), []
            for key in keys:
                if key in seen:
                    dupes.append(key)
                seen.add(key)
            raise ValueError(f"duplicate sweep cell keys: {dupes[:5]}")
        self.last_fallback = None
        backend = self._explicit_backend()
        if backend is not None:
            results = backend.submit(cells, progress=self.progress)
            self.last_mode = backend.name
            return self._finish(results)
        return self._finish(self._map_local(cells))

    # ------------------------------------------------------------------
    def _explicit_backend(self):
        """Resolve the explicit backend, if one was requested.

        ``"local"`` and ``"serial"`` resolve to None here and steer the
        built-in path instead, so they keep its preflight checks and
        pool fallback behaviour.
        """
        spec = self.backend
        if spec is None:
            return None
        if isinstance(spec, str):
            text = spec.strip().lower()
            if text == "local":
                return None
            if text == "serial":
                self.jobs = 1
                return None
        from repro.harness.dist import resolve_backend

        backend = resolve_backend(spec, jobs=self.jobs,
                                  initializer=self.initializer,
                                  initargs=self.initargs)
        if self.initializer is not None \
                and getattr(backend, "initializer", True) is None:
            # A pre-built instance (e.g. the CLI wiring an event sink)
            # still inherits the runner's cache-warming initializer.
            backend.initializer = self.initializer
            backend.initargs = self.initargs
        return backend

    def _map_local(self, cells) -> dict:
        """The built-in path: process pool with serial fallbacks."""
        if self.jobs <= 1 or len(cells) <= 1:
            return self._map_serial(cells)
        if not self._picklable(cells):  # spawn-unsafe, go serial
            return self._map_serial(cells)
        try:
            return self._map_parallel(cells)
        except (OSError, ImportError) as exc:
            # No pool on this platform (sandboxed /dev/shm, missing
            # semaphores, fork failure): degrade, don't die.
            self.last_fallback = exc
            return self._map_serial(cells)

    def _finish(self, results: dict) -> dict:
        """Raise on captured failures unless ``capture_errors`` asked
        for them in the result dict."""
        if self.capture_errors:
            return results
        failures = {key: value for key, value in results.items()
                    if isinstance(value, CellFailure)}
        if failures:
            completed = {key: value for key, value in results.items()
                         if not isinstance(value, CellFailure)}
            raise SweepCellError(failures, completed)
        return results

    # ------------------------------------------------------------------
    def _picklable(self, cells) -> bool:
        payloads = [(i, cell.fn, dict(cell.kwargs))
                    for i, cell in enumerate(cells)]
        try:
            pickle.dumps(payloads)
            if self.initializer is not None:
                pickle.dumps((self.initializer, self.initargs))
        except Exception as exc:  # PicklingError, AttributeError, TypeError
            self.last_fallback = exc
            return False
        return True

    def _map_serial(self, cells) -> dict:
        from repro.harness.dist.local import SerialBackend

        self.last_mode = "serial"
        backend = SerialBackend(initializer=self.initializer,
                                initargs=self.initargs)
        return backend.submit(cells, progress=self.progress)

    def _map_parallel(self, cells) -> dict:
        from repro.harness.dist.local import ProcessPoolBackend

        backend = ProcessPoolBackend(
            jobs=self.jobs, start_method=self.start_method,
            initializer=self.initializer, initargs=self.initargs)
        results = backend.submit(cells, progress=self.progress)
        self.last_mode = "parallel"
        return results


def run_cells(
    fn: Callable[..., Any],
    keyed_kwargs: Mapping[Hashable, Mapping[str, Any]],
    jobs: int | None = None,
    **runner_kwargs,
) -> dict:
    """Convenience wrapper: sweep one function over ``{key: kwargs}``."""
    runner = SweepRunner(jobs=jobs, **runner_kwargs)
    return runner.map(
        SweepCell(key=key, fn=fn, kwargs=kwargs)
        for key, kwargs in keyed_kwargs.items()
    )
