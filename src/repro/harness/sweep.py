"""Parallel sweep execution substrate.

Every paper figure is a sweep over independent simulation cells --
(workload x protocol combo x MCM x seed) -- that share no state: each
cell builds its own :class:`~repro.sim.system.System` from a config and
a seed.  :class:`SweepRunner` fans those cells out over a
``multiprocessing`` process pool while keeping the *results* keyed by
cell, so a parallel sweep is bit-identical to the serial one regardless
of completion order.

Design constraints (and how they are met):

- **Spawn safety.**  Cell functions must be module-level callables and
  cell kwargs picklable values; both are verified up front with a
  pre-flight ``pickle.dumps`` so a bad cell degrades to the serial path
  instead of wedging the pool's task-handler thread.
- **Determinism.**  Results are stored by cell key (never by completion
  order) and every cell carries its own seed, so
  ``SweepRunner(jobs=N).map(cells) == SweepRunner(jobs=1).map(cells)``
  for any ``N``.
- **Graceful fallback.**  ``jobs=1``, a single cell, an unpicklable
  cell, or an OS that cannot spawn processes all fall back to a plain
  in-process loop.  ``runner.last_mode`` records which path ran.

Knobs:

- ``REPRO_JOBS`` (or the ``--jobs`` CLI flag / ``jobs=`` keyword):
  worker count; defaults to ``os.cpu_count()``; ``1`` forces the
  serial path.
- ``REPRO_MP_START``: multiprocessing start method (``fork`` /
  ``spawn`` / ``forkserver``); defaults to the platform default.

See ``docs/PERFORMANCE.md`` for measured numbers.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

JOBS_ENV = "REPRO_JOBS"
START_METHOD_ENV = "REPRO_MP_START"


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``fn`` must be a module-level callable (so it pickles by reference
    under the spawn start method) and ``kwargs`` picklable values; the
    runner calls ``fn(**kwargs)`` and files the return value under
    ``key``.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellOutput:
    """A sweep-cell return value paired with its per-cell metric rollup.

    Cell functions that gather observability data return one of these;
    :func:`split_metrics` separates the plain values (what the figure
    machinery consumes) from the rollups (what ``--obs`` reports).
    """

    value: Any
    metrics: Any = None


def split_metrics(results: Mapping[Hashable, Any]) -> tuple[dict, dict]:
    """Split a sweep result map into ``(values, rollups)``.

    Plain results pass through unchanged with no rollup entry;
    :class:`CellOutput` results are unpacked.  The values dict always
    has the same keys as the input, so callers are agnostic to whether
    the sweep ran with observability on.
    """
    values: dict = {}
    rollups: dict = {}
    for key, result in results.items():
        if isinstance(result, CellOutput):
            values[key] = result.value
            if result.metrics is not None:
                rollups[key] = result.metrics
        else:
            values[key] = result
    return values, rollups


def _run_cell(payload):
    """Pool worker entry: run one cell, tagging the result with its
    index and wall time (measured in the worker, so the parent's
    progress report shows real per-cell cost, not queueing delay)."""
    index, fn, kwargs = payload
    t0 = time.perf_counter()
    result = fn(**kwargs)
    return index, time.perf_counter() - t0, result


class SweepRunner:
    """Fan independent sweep cells out over a process pool.

    Results come back as ``{cell.key: fn(**kwargs)}`` in the order the
    cells were given, independent of which worker finished first -- the
    property that keeps parallel figure regeneration bit-identical to
    the serial path.
    """

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        progress: Callable[[int, int, Hashable, float], None] | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.start_method = (
            start_method
            or os.environ.get(START_METHOD_ENV, "").strip()
            or None
        )
        self.initializer = initializer
        self.initargs = initargs
        #: Optional callback ``progress(done, total, key, wall_seconds)``
        #: fired as each cell completes (in completion order).
        self.progress = progress
        #: "serial" or "parallel" after the last map() call.
        self.last_mode: str | None = None
        #: The exception that forced a fallback to serial, if any.
        self.last_fallback: BaseException | None = None

    # ------------------------------------------------------------------
    def map(self, cells: Iterable[SweepCell]) -> dict:
        """Run every cell; return ``{key: result}`` keyed deterministically."""
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            seen, dupes = set(), []
            for key in keys:
                if key in seen:
                    dupes.append(key)
                seen.add(key)
            raise ValueError(f"duplicate sweep cell keys: {dupes[:5]}")
        self.last_fallback = None
        if self.jobs <= 1 or len(cells) <= 1:
            return self._map_serial(cells)
        payloads = self._payloads(cells)
        if payloads is None:  # unpicklable cell: spawn-unsafe, go serial
            return self._map_serial(cells)
        try:
            return self._map_parallel(cells, payloads)
        except (OSError, ImportError) as exc:
            # No pool on this platform (sandboxed /dev/shm, missing
            # semaphores, fork failure): degrade, don't die.
            self.last_fallback = exc
            return self._map_serial(cells)

    # ------------------------------------------------------------------
    def _payloads(self, cells):
        payloads = [(i, cell.fn, dict(cell.kwargs))
                    for i, cell in enumerate(cells)]
        try:
            pickle.dumps(payloads)
            if self.initializer is not None:
                pickle.dumps((self.initializer, self.initargs))
        except Exception as exc:  # PicklingError, AttributeError, TypeError
            self.last_fallback = exc
            return None
        return payloads

    def _map_serial(self, cells) -> dict:
        self.last_mode = "serial"
        if self.initializer is not None:
            self.initializer(*self.initargs)
        progress = self.progress
        results: dict = {}
        total = len(cells)
        for done, cell in enumerate(cells, start=1):
            t0 = time.perf_counter()
            results[cell.key] = cell.fn(**cell.kwargs)
            if progress is not None:
                progress(done, total, cell.key, time.perf_counter() - t0)
        return results

    def _map_parallel(self, cells, payloads) -> dict:
        import multiprocessing

        context = multiprocessing.get_context(self.start_method)
        progress = self.progress
        total = len(cells)
        done = 0
        results: list = [None] * len(cells)
        filled = [False] * len(cells)
        with context.Pool(
            processes=min(self.jobs, len(cells)),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            for index, wall, value in pool.imap_unordered(_run_cell, payloads):
                results[index] = value
                filled[index] = True
                done += 1
                if progress is not None:
                    progress(done, total, cells[index].key, wall)
        if not all(filled):  # pragma: no cover - pool never drops tasks
            raise OSError("process pool dropped sweep cells")
        self.last_mode = "parallel"
        return {cell.key: results[i] for i, cell in enumerate(cells)}


def run_cells(
    fn: Callable[..., Any],
    keyed_kwargs: Mapping[Hashable, Mapping[str, Any]],
    jobs: int | None = None,
    **runner_kwargs,
) -> dict:
    """Convenience wrapper: sweep one function over ``{key: kwargs}``."""
    runner = SweepRunner(jobs=jobs, **runner_kwargs)
    return runner.map(
        SweepCell(key=key, fn=fn, kwargs=kwargs)
        for key, kwargs in keyed_kwargs.items()
    )
