"""Experiment drivers: Figs. 9-11 and Table IV.

Every driver returns a result object with the same rows/series the
paper reports and a ``format()`` method producing the printable table.
Run sizes scale with ``scale`` (and the ``REPRO_BENCH_SCALE`` /
``REPRO_LITMUS_RUNS`` environment knobs used by the benchmark harness):
the paper's absolute numbers came from gem5 on a 32-core server; the
*shapes* -- who wins, by what factor, where the pain concentrates --
are what these drivers reproduce.

Every figure/table driver takes a ``jobs`` keyword (default: the
``REPRO_JOBS`` environment knob, then ``os.cpu_count()``) and fans its
independent simulation cells out over the
:class:`~repro.harness.sweep.SweepRunner` process pool.  Results are
keyed by cell, so a parallel regeneration is bit-identical to a serial
one (``jobs=1``).  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.core.generator import warm_fsm_cache
from repro.harness.sweep import CellOutput, SweepCell, SweepRunner, split_metrics
from repro.sim.config import two_cluster_config
from repro.sim.system import build_system
from repro.stats.collectors import LATENCY_BINS, RunResult
from repro.obs.telemetry import telemetry
from repro.stats.export import merge_obs
from repro.verify.litmus import TABLE4_TESTS
from repro.verify.runner import run_litmus
from repro.workloads import WORKLOADS, workload_names

#: The protocol combinations of Fig. 10.
FIG10_COMBOS = (
    ("MESI", "MESI", "MESI"),
    ("MESI", "CXL", "MESI"),
    ("MESI", "CXL", "MOESI"),
    ("MESI", "CXL", "MESIF"),
)

#: The MCM configurations of Fig. 9 (per-cluster models).
FIG9_MCMS = (
    ("ARM", ("WEAK", "WEAK")),
    ("TSO", ("TSO", "TSO")),
    ("ARM/TSO", ("WEAK", "TSO")),
)

FIG11_WORKLOADS = ("histogram", "barnes", "lu-ncont", "vips")


def combo_name(combo) -> str:
    """Join a protocol combo tuple into its display name."""
    return "-".join(combo)


def geomean(values) -> float:
    """Geometric mean of a non-empty iterable of positive numbers."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    bad = [v for v in values if v <= 0]
    if bad:
        raise ValueError(
            f"geomean requires positive values; got {bad[:5]}"
            f"{'...' if len(bad) > 5 else ''}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def default_scale() -> float:
    """Workload scale factor from REPRO_BENCH_SCALE (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


# ---------------------------------------------------------------------------
# Single-workload runner (the public entry point).
# ---------------------------------------------------------------------------

def run_workload(
    name: str,
    combo=("MESI", "CXL", "MESI"),
    mcms=("WEAK", "WEAK"),
    cores_per_cluster: int = 2,
    scale: float = 1.0,
    seed: int = 1,
    obs=False,
) -> RunResult:
    """Run one kernel on a two-cluster system and return its stats.

    ``obs`` turns observability on for the run: ``True`` attaches a
    default :class:`repro.obs.Observability` (spans + metrics), or pass
    a pre-configured instance.  The finalized dump lands in
    ``result.extra["obs"]``.
    """
    local_a, global_protocol, local_b = combo
    config = two_cluster_config(
        local_a, global_protocol, local_b,
        mcm_a=mcms[0], mcm_b=mcms[1],
        cores_per_cluster=cores_per_cluster, seed=seed,
    )
    system = build_system(config)
    observability = None
    if obs:
        from repro.obs import Observability

        observability = obs if isinstance(obs, Observability) else Observability()
        observability.attach(system)
    threads = config.total_cores
    programs = WORKLOADS[name].build(threads, scale=scale, seed=seed)
    result = system.run_threads(programs)
    if observability is not None:
        merge_obs(result, observability)
        # Fleet telemetry: inside a dist worker, fold this run's metric
        # snapshot and spans into the process-global collector so they
        # ship home.  No-op (one flag test) outside a telemetry worker.
        telemetry().absorb_run(observability)
    result.extra["workload"] = name
    result.extra["combo"] = combo_name(combo)
    result.extra["conflicts"] = sum(c.bridge.port.conflicts
                                    for c in system.clusters
                                    if hasattr(c.bridge.port, "conflicts"))
    result.extra["home_queued"] = getattr(system.home, "queued_total", 0)
    return result


# ---------------------------------------------------------------------------
# Sweep plumbing shared by the figure/table drivers.
# ---------------------------------------------------------------------------

def _workload_time(**kwargs) -> int:
    """Sweep cell: one workload run reduced to its execution time."""
    return run_workload(**kwargs).exec_time


def _workload_stats(**kwargs):
    """Sweep cell: one workload run reduced to its OpStats."""
    return run_workload(**kwargs).stats


def _workload_time_obs(**kwargs) -> CellOutput:
    """Sweep cell: execution time plus the per-cell obs rollup."""
    result = run_workload(obs=True, **kwargs)
    return CellOutput(result.exec_time, result.extra["obs"])


def _workload_stats_obs(**kwargs) -> CellOutput:
    """Sweep cell: OpStats plus the per-cell obs rollup."""
    result = run_workload(obs=True, **kwargs)
    return CellOutput(result.stats, result.extra["obs"])


def _fsm_pairs(combos) -> tuple:
    """Distinct (local, global) generator pairs a set of combos needs."""
    return tuple(sorted({
        (local, combo[1])
        for combo in combos
        for local in (combo[0], combo[2])
    }))


def _sweep(cells, combos, jobs: int | None, progress=None,
           backend=None) -> dict:
    """Run figure cells through a SweepRunner warmed for ``combos``.

    ``backend`` selects the execution backend (None for the local pool;
    see :func:`repro.harness.dist.resolve_backend` for the string
    spellings) -- results are keyed by cell either way, so every
    backend regenerates the figure bit-identically.
    """
    runner = SweepRunner(
        jobs=jobs, initializer=warm_fsm_cache, initargs=(_fsm_pairs(combos),),
        progress=progress, backend=backend,
    )
    return runner.map(cells)


# ---------------------------------------------------------------------------
# Figure 10: protocol combinations, normalized execution time.
# ---------------------------------------------------------------------------

@dataclass
class Figure10Result:
    workloads: list[str]
    combos: tuple
    times: dict  # (workload, combo name) -> ticks
    #: cell key -> per-cell obs rollup (empty unless obs=True)
    cell_metrics: dict = field(default_factory=dict)

    def normalized(self, workload: str, combo) -> float:
        """Execution time relative to the first (baseline) combo."""
        base = self.times[(workload, combo_name(self.combos[0]))]
        return self.times[(workload, combo_name(combo))] / base

    def mean_slowdown(self, combo) -> float:
        """Geomean normalized slowdown across all workloads."""
        return geomean(self.normalized(w, combo) for w in self.workloads)

    def max_slowdown(self, combo) -> float:
        """Worst-case normalized slowdown across all workloads."""
        return max(self.normalized(w, combo) for w in self.workloads)

    def format(self) -> str:
        """Render the Fig. 10 table."""
        names = [combo_name(c) for c in self.combos]
        width = max(len(w) for w in self.workloads) + 2
        lines = ["Figure 10: execution time normalized to MESI-MESI-MESI",
                 " " * width + "  ".join(f"{n:>16}" for n in names)]
        for workload in self.workloads:
            row = [f"{self.normalized(workload, c):>16.3f}" for c in self.combos]
            lines.append(f"{workload:<{width}}" + "  ".join(row))
        mean_row = [f"{self.mean_slowdown(c):>16.3f}" for c in self.combos]
        lines.append(f"{'geomean':<{width}}" + "  ".join(mean_row))
        return "\n".join(lines)


def figure10(workloads=None, cores_per_cluster=2, scale=None,
             seeds=(1, 2, 3), combos=FIG10_COMBOS,
             jobs: int | None = None, obs: bool = False,
             progress=None, backend=None) -> Figure10Result:
    """Regenerate Fig. 10: protocol combinations, normalized time.

    Each (workload, combo, seed) cell is an independent simulation;
    they are fanned out over ``jobs`` worker processes and reduced by
    seed-geomean afterwards, so the result is identical for any
    ``jobs``.  ``obs=True`` collects a per-cell observability rollup
    into ``result.cell_metrics``; ``progress`` is forwarded to the
    sweep runner (see :class:`repro.harness.sweep.SweepRunner`).
    """
    workloads = list(workloads or workload_names())
    scale = default_scale() if scale is None else scale
    cells = [
        SweepCell(
            key=(workload, combo_name(combo), seed),
            fn=_workload_time_obs if obs else _workload_time,
            kwargs=dict(name=workload, combo=combo, mcms=("WEAK", "WEAK"),
                        cores_per_cluster=cores_per_cluster,
                        scale=scale, seed=seed),
        )
        for workload in workloads
        for combo in combos
        for seed in seeds
    ]
    runs, rollups = split_metrics(_sweep(cells, combos, jobs, progress,
                                         backend))
    times = {
        (workload, combo_name(combo)): geomean(
            runs[(workload, combo_name(combo), seed)] for seed in seeds)
        for workload in workloads
        for combo in combos
    }
    return Figure10Result(workloads, tuple(combos), times, cell_metrics=rollups)


# ---------------------------------------------------------------------------
# Figure 9: MCM combinations per suite.
# ---------------------------------------------------------------------------

@dataclass
class Figure9Result:
    combos: tuple  # protocol combos evaluated
    suites: tuple
    #: (combo name, mcm label, suite) -> geomean exec time
    times: dict
    #: cell key -> per-cell obs rollup (empty unless obs=True)
    cell_metrics: dict = field(default_factory=dict)

    def normalized(self, combo, mcm_label, suite) -> float:
        """Suite mean relative to the all-ARM configuration."""
        base = self.times[(combo_name(combo), "ARM", suite)]
        return self.times[(combo_name(combo), mcm_label, suite)] / base

    def format(self) -> str:
        """Render the Fig. 9 table."""
        lines = ["Figure 9: per-suite mean execution time normalized to the ARM MCM"]
        for combo in self.combos:
            lines.append(f"-- {combo_name(combo)}")
            header = f"{'suite':<12}" + "".join(f"{label:>10}" for label, _ in FIG9_MCMS)
            lines.append(header)
            for suite in self.suites:
                row = "".join(
                    f"{self.normalized(combo, label, suite):>10.3f}"
                    for label, _ in FIG9_MCMS
                )
                lines.append(f"{suite:<12}" + row)
        return "\n".join(lines)


def figure9(workloads_per_suite=None, cores_per_cluster=2, scale=None, seed=1,
            combos=(("MESI", "CXL", "MESI"), ("MESI", "CXL", "MOESI")),
            jobs: int | None = None, obs: bool = False,
            progress=None, backend=None, seeds=(1, 2)) -> Figure9Result:
    """Regenerate Fig. 9: per-suite MCM-combination means.

    Every (combo, suite, MCM label, workload, seed) cell runs
    independently on the sweep pool; the per-suite geomeans are reduced
    afterwards in deterministic cell order.
    """
    scale = default_scale() if scale is None else scale
    suites = ("splash4", "parsec", "phoenix")
    suite_names = {}
    for suite in suites:
        names = workload_names(suite)
        if workloads_per_suite is not None:
            names = names[:workloads_per_suite]
        suite_names[suite] = names
    cells = [
        SweepCell(
            key=(combo_name(combo), label, suite, name, run_seed),
            fn=_workload_time_obs if obs else _workload_time,
            kwargs=dict(name=name, combo=combo, mcms=mcms,
                        cores_per_cluster=cores_per_cluster,
                        scale=scale, seed=run_seed),
        )
        for combo in combos
        for suite in suites
        for label, mcms in FIG9_MCMS
        for name in suite_names[suite]
        for run_seed in seeds
    ]
    runs, rollups = split_metrics(_sweep(cells, combos, jobs, progress,
                                         backend))
    times = {
        (combo_name(combo), label, suite): geomean(
            runs[(combo_name(combo), label, suite, name, run_seed)]
            for name in suite_names[suite]
            for run_seed in seeds)
        for combo in combos
        for suite in suites
        for label, _mcms in FIG9_MCMS
    }
    return Figure9Result(combos, suites, times, cell_metrics=rollups)


# ---------------------------------------------------------------------------
# Figure 11: miss-cycle breakdown by latency range and instruction type.
# ---------------------------------------------------------------------------

@dataclass
class Figure11Result:
    workloads: tuple
    #: (workload, system label) -> OpStats
    stats: dict
    systems: tuple = ("MESI-MESI-MESI", "MESI-CXL-MESI")
    #: cell key -> per-cell obs rollup (empty unless obs=True)
    cell_metrics: dict = field(default_factory=dict)

    def miss_cycles(self, workload, system, group=None, bin_name=None) -> int:
        """Miss ticks for one workload/system, optionally filtered."""
        return self.stats[(workload, system)].miss_cycles(group, bin_name)

    def high_latency_growth(self, workload) -> float:
        """How much the >400ns miss cycles grow under CXL."""
        base = self.miss_cycles(workload, self.systems[0], bin_name="high")
        cxl = self.miss_cycles(workload, self.systems[1], bin_name="high")
        return cxl / base if base else float("inf") if cxl else 1.0

    def total_growth(self, workload) -> float:
        """Total miss-cycle growth of MESI-CXL-MESI over the baseline."""
        base = self.miss_cycles(workload, self.systems[0])
        cxl = self.miss_cycles(workload, self.systems[1])
        return cxl / base if base else 1.0

    def format(self) -> str:
        """Render the Fig. 11 table."""
        lines = ["Figure 11: miss cycles by latency range and instruction type",
                 f"{'workload':<12}{'system':<16}" +
                 "".join(f"{g + '/' + b:>14}"
                         for g in ("load", "store", "rmw")
                         for b, _ in LATENCY_BINS)]
        for workload in self.workloads:
            for system in self.systems:
                stats = self.stats[(workload, system)]
                cells = "".join(
                    f"{stats.miss_cycles(group, bin_name):>14}"
                    for group in ("load", "store", "rmw")
                    for bin_name, _bound in LATENCY_BINS
                )
                lines.append(f"{workload:<12}{system:<16}" + cells)
        lines.append("")
        for workload in self.workloads:
            lines.append(
                f"{workload}: total miss-cycle growth "
                f"{self.total_growth(workload):.2f}x, "
                f">400ns growth {self.high_latency_growth(workload):.2f}x"
            )
        return "\n".join(lines)


def figure11(workloads=FIG11_WORKLOADS, cores_per_cluster=2, scale=None,
             seed=1, jobs: int | None = None, obs: bool = False,
             progress=None, backend=None) -> Figure11Result:
    """Regenerate Fig. 11: miss-cycle latency breakdown."""
    scale = default_scale() if scale is None else scale
    combos = (("MESI", "MESI", "MESI"), ("MESI", "CXL", "MESI"))
    cells = [
        SweepCell(
            key=(workload, combo_name(combo)),
            fn=_workload_stats_obs if obs else _workload_stats,
            kwargs=dict(name=workload, combo=combo, mcms=("WEAK", "WEAK"),
                        cores_per_cluster=cores_per_cluster,
                        scale=scale, seed=seed),
        )
        for workload in workloads
        for combo in combos
    ]
    stats, rollups = split_metrics(_sweep(cells, combos, jobs, progress,
                                          backend))
    return Figure11Result(tuple(workloads), stats, cell_metrics=rollups)


# ---------------------------------------------------------------------------
# Table IV: the litmus matrix.
# ---------------------------------------------------------------------------

TABLE4_PROTOCOLS = (("MESI", "CXL", "MESI"), ("MESI", "CXL", "MOESI"))
TABLE4_MCMS = (
    ("Arm-Arm", ("WEAK", "WEAK")),
    ("TSO-Arm", ("TSO", "WEAK")),
    ("TSO-TSO", ("TSO", "TSO")),
)


@dataclass
class Table4Result:
    #: (test name, combo name, mcm label) -> LitmusResult
    results: dict = field(default_factory=dict)

    def all_passed(self) -> bool:
        """True when every litmus configuration passed."""
        return all(r.passed for r in self.results.values())

    def format(self) -> str:
        """Render the Table IV matrix."""
        lines = ["Table IV: litmus results (ok = no forbidden outcome observed)"]
        header = f"{'Test':<10}"
        for combo in TABLE4_PROTOCOLS:
            for label, _ in TABLE4_MCMS:
                header += f"{combo_name(combo).split('-')[-1] + '/' + label:>16}"
        lines.append(header)
        for test in TABLE4_TESTS:
            row = f"{test.name + '-sys':<10}"
            for combo in TABLE4_PROTOCOLS:
                for label, _mcms in TABLE4_MCMS:
                    result = self.results[(test.name, combo_name(combo), label)]
                    mark = "ok" if result.passed else "FAIL"
                    row += f"{mark:>16}"
            lines.append(row)
        return "\n".join(lines)


def table4(runs: int | None = None, seed: int = 0,
           jobs: int | None = None, progress=None,
           backend=None) -> Table4Result:
    """Regenerate Table IV: the litmus matrix.

    Each of the 7 tests x 2 combos x 3 MCM pairings is an independent
    randomized litmus campaign (seeded per cell), swept in parallel.
    """
    runs = runs or int(os.environ.get("REPRO_LITMUS_RUNS", "40"))
    cells = [
        SweepCell(
            key=(test.name, combo_name(combo), label),
            fn=run_litmus,
            kwargs=dict(test=test, combo=combo, mcms=mcms, runs=runs,
                        seed0=seed),
        )
        for test in TABLE4_TESTS
        for combo in TABLE4_PROTOCOLS
        for label, mcms in TABLE4_MCMS
    ]
    return Table4Result(results=_sweep(cells, TABLE4_PROTOCOLS, jobs,
                                       progress, backend))
