"""Command-line interface.

``python -m repro <command>`` (or the installed ``c3-repro`` script)
exposes the library's main entry points without writing any code:

- ``tables``      print Tables I-III.
- ``table4``      run the litmus matrix (Table IV).
- ``litmus``      run one litmus test on a chosen configuration.
- ``workload``    run one kernel and print its statistics (``--obs``
  adds the span/metrics summary).
- ``trace``       run one kernel fully instrumented (``repro.obs``) and
  export a Chrome/Perfetto trace (``--chrome-trace``) and/or a JSON
  metrics dump (``--metrics``); exits 1 if the runtime Rule-II audit
  observed a nesting violation.
- ``fig9/fig10/fig11``  regenerate a figure (``--obs`` for per-cell
  rollups, ``--progress`` for live sweep progress on stderr; with a
  queue/ssh backend, ``--chrome-trace`` / ``--prom-out`` /
  ``--telemetry-json`` export the stitched fleet telemetry).
- ``metrics-server``  serve a telemetry snapshot file as Prometheus
  text exposition on ``/metrics`` (plus ``/healthz``), stdlib only.
- ``bench report``    print latest-vs-previous deltas across every
  ``BENCH_*.json`` trajectory; exit 1 when a directional field
  regressed beyond the threshold.
- ``scenario``    declarative TOML scenarios: ``validate``/``run`` a
  corpus (fault injection, host churn), ``fuzz`` the scenario space
  with coverage guidance, ``shrink`` a failing scenario to 1-minimal
  TOML (see docs/SCENARIOS.md).
- ``slicc``       dump the generated compound controller.
- ``lint``        statically lint the generated protocol artifacts
  (``--strict`` fails on any finding, ``--self-test`` proves every rule
  fires on its injected-defect fixture; exit 0 clean / 1 findings /
  2 internal error).
- ``check``       exhaustively model-check one litmus program on one
  combo (``repro.verify.mc``): every delivery order explored, invariants
  and deadlock-freedom checked, outcomes compared against the axiomatic
  model; ``--shards N --backend queue:K`` distributes the search.
  Exit 0 verified / 1 counterexamples or truncated / 2 bad usage.
- ``list``        list available workloads and litmus tests.

The sweep subcommands (``table4``, ``fig9``, ``fig10``, ``fig11``)
accept ``--jobs N`` to fan their independent simulation cells out over
N worker processes (default: the ``REPRO_JOBS`` environment variable,
then ``os.cpu_count()``; ``--jobs 1`` forces the serial path).  Results
are bit-identical regardless of the worker count.
"""

from __future__ import annotations

import argparse
import sys


def _parse_combo(text: str) -> tuple[str, str, str]:
    # Both L-G-L and L:G:L spellings are accepted (the paper writes
    # pairings with colons; the figure tables with dashes).
    parts = text.replace(":", "-").split("-")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"combo must look like MESI-CXL-MOESI (or MESI:CXL:MOESI), "
            f"got {text!r}")
    return (parts[0], parts[1], parts[2])


def _parse_mcms(text: str) -> tuple[str, str]:
    parts = tuple(text.split(","))
    if len(parts) != 2:
        raise argparse.ArgumentTypeError("mcms must look like TSO,WEAK")
    return parts  # type: ignore[return-value]


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: REPRO_JOBS, then "
             "cpu count; 1 = serial)")


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="execution backend: serial, local, queue, queue:N, "
             "queue:HOST:PORT or ssh:HOSTS.toml (default: REPRO_BACKEND, "
             "then the local process pool); see docs/DISTRIBUTED.md")


def _add_progress_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="report each sweep cell as it completes (stderr)")


def _add_obs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", action="store_true",
        help="collect observability data (spans + metrics) during the run")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Fleet-telemetry export flags shared by sweeps and ``check``."""
    parser.add_argument(
        "--chrome-trace", metavar="OUT.json", default=None,
        help="write the stitched fleet Chrome trace (one track group per "
             "worker; needs a queue/ssh backend)")
    parser.add_argument(
        "--prom-out", metavar="OUT.txt", default=None,
        help="write the fleet metrics as Prometheus text exposition "
             "(fleet totals plus a per-worker split)")
    parser.add_argument(
        "--telemetry-json", metavar="OUT.json", default=None,
        help="write the raw fleet telemetry (merged registry snapshot + "
             "per-worker breakdown) as JSON")


def _progress_printer(done: int, total: int, key, wall: float) -> None:
    """Default ``--progress`` sink: one stderr line per finished cell."""
    print(f"[sweep] cell {done}/{total} done ({key}, {wall:.2f}s)",
          file=sys.stderr)


def _dist_event_printer(kind: str, detail: dict) -> None:
    """``--progress`` sink for queue-backend failure-path events."""
    info = ", ".join(f"{k}={v}" for k, v in detail.items())
    print(f"[dist] {kind}" + (f" ({info})" if info else ""), file=sys.stderr)


def _wants_telemetry(args) -> bool:
    """Did the command line ask for any fleet telemetry artifact?"""
    return any(getattr(args, name, None)
               for name in ("chrome_trace", "prom_out", "telemetry_json"))


def _resolve_cli_backend(args):
    """Build the backend for a sweep subcommand.

    Returns the ``--backend`` spec unchanged (or None for the default
    local pool) -- except when ``--progress`` asks for failure-path
    reporting on a queue/ssh backend, or a telemetry export flag needs
    the broker's fleet aggregate after the sweep, in which case the
    instance is constructed here.
    """
    spec = args.backend
    wants_events = getattr(args, "progress", False)
    if spec is None or not (wants_events or _wants_telemetry(args)):
        return spec
    if not isinstance(spec, str) or \
            spec.split(":", 1)[0].lower() not in ("queue", "ssh"):
        return spec
    from repro.harness.dist import resolve_backend

    backend = resolve_backend(spec, jobs=args.jobs)
    if wants_events:
        backend.events = _dist_event_printer
    return backend


def _write_telemetry_outputs(args, backend) -> int:
    """Write the fleet telemetry artifacts requested on the command line.

    Returns 0 when nothing was requested (or everything was written),
    2 when a requested artifact cannot be produced: no fleet telemetry
    on this backend (telemetry needs ``--backend queue:...``/``ssh:...``)
    or the stitched trace failed schema validation.
    """
    import json

    if not _wants_telemetry(args):
        return 0
    fleet = getattr(backend, "fleet", None)
    if fleet is None:
        print("error: no fleet telemetry collected -- telemetry exports "
              "need a queue/ssh backend (e.g. --backend queue:2)",
              file=sys.stderr)
        return 2
    if not fleet.workers():
        print("error: no worker reported telemetry -- the run never "
              "fanned out to the fleet (model checks need --shards > 1; "
              "sweeps need at least one cell)", file=sys.stderr)
        return 2
    if getattr(args, "telemetry_json", None):
        with open(args.telemetry_json, "w", encoding="utf-8") as handle:
            json.dump(fleet.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote fleet telemetry JSON to {args.telemetry_json}")
    if getattr(args, "prom_out", None):
        from repro.obs.prom import fleet_to_prometheus

        text = fleet_to_prometheus(fleet.registry().snapshot(),
                                   fleet.per_worker())
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition to {args.prom_out}")
    if getattr(args, "chrome_trace", None):
        from repro.obs import TraceValidationError, write_trace_file

        try:
            count = write_trace_file(args.chrome_trace, fleet.chrome_trace())
        except TraceValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            for problem in exc.problems[:10]:
                print(f"  - {problem}", file=sys.stderr)
            return 2
        print(f"wrote {count} stitched trace events from "
              f"{len(fleet.workers())} worker(s) to {args.chrome_trace}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="C3: CXL coherence controllers -- paper reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I-III")

    p = sub.add_parser("table4", help="run the Table IV litmus matrix")
    p.add_argument("--runs", type=int, default=None)
    _add_jobs_flag(p)
    _add_backend_flag(p)
    _add_progress_flag(p)

    p = sub.add_parser("litmus", help="run one litmus test")
    p.add_argument("name", nargs="?", default=None,
                   help="builtin test name, e.g. MP, SB, IRIW, 2+2W")
    p.add_argument("--file", help="parse the test from a .litmus text file")
    p.add_argument("--combo", type=_parse_combo, default=("MESI", "CXL", "MESI"))
    p.add_argument("--mcms", type=_parse_mcms, default=("WEAK", "WEAK"))
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--no-sync", action="store_true",
                   help="remove synchronization (control experiment)")

    p = sub.add_parser("workload", help="run one kernel")
    p.add_argument("name")
    p.add_argument("--combo", type=_parse_combo, default=("MESI", "CXL", "MESI"))
    p.add_argument("--mcms", type=_parse_mcms, default=("WEAK", "WEAK"))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--cores", type=int, default=2,
                   help="cores per cluster")
    p.add_argument("--profile", nargs="?", const=25, type=int, default=None,
                   metavar="N",
                   help="profile the run under cProfile and print the top N "
                        "functions by cumulative time (default 25)")
    p.add_argument("--profile-out", metavar="OUT.pstats", default=None,
                   help="also dump raw pstats data for snakeviz/pstats "
                        "(implies --profile)")
    _add_obs_flag(p)

    p = sub.add_parser(
        "trace",
        help="run one kernel with full observability and export traces",
        description="Run one workload with spans, metrics and the runtime "
                    "Rule-II audit enabled; optionally export a Chrome/"
                    "Perfetto trace and a JSON metrics dump.  Exit codes: "
                    "0 clean, 1 Rule-II violations observed, 2 bad usage.")
    p.add_argument("name", help="workload name (see `repro list`)")
    p.add_argument("--combo", type=_parse_combo,
                   default=("MESI", "CXL", "MESI"),
                   help="protocol combo, L:G:L or L-G-L "
                        "(default MESI:CXL:MESI)")
    p.add_argument("--mcms", type=_parse_mcms, default=("WEAK", "WEAK"))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--cores", type=int, default=2, help="cores per cluster")
    p.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                   help="write a Perfetto-loadable trace-event JSON file")
    p.add_argument("--metrics", metavar="OUT.json", default=None,
                   help="write the hierarchical metrics dump as JSON")
    p.add_argument("--addr", type=lambda t: int(t, 0), default=None,
                   help="also record per-message trace events for this "
                        "line address (hex ok)")
    p.add_argument("--sample-engine", action="store_true",
                   help="profile the event loop (events/sec, time per "
                        "callback kind); costs wall time")

    p = sub.add_parser("fig9", help="regenerate Figure 9")
    p.add_argument("--per-suite", type=int, default=None,
                   help="limit workloads per suite")
    _add_jobs_flag(p)
    _add_backend_flag(p)
    _add_progress_flag(p)
    _add_obs_flag(p)
    _add_telemetry_flags(p)
    p = sub.add_parser("fig10", help="regenerate Figure 10")
    p.add_argument("--workloads", nargs="*", default=None)
    _add_jobs_flag(p)
    _add_backend_flag(p)
    _add_progress_flag(p)
    _add_obs_flag(p)
    _add_telemetry_flags(p)
    p = sub.add_parser("fig11", help="regenerate Figure 11")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="limit to these workloads (default: the paper's "
                        "four)")
    _add_jobs_flag(p)
    _add_backend_flag(p)
    _add_progress_flag(p)
    _add_obs_flag(p)
    _add_telemetry_flags(p)

    p = sub.add_parser(
        "worker",
        help="serve sweep cells for a distributed queue broker",
        description="Connect to a sweep broker (a `--backend queue:...` "
                    "run) and execute cells until it shuts the fleet "
                    "down.  Exit codes: 0 normal shutdown, 1 cannot "
                    "connect, 2 rejected at handshake (source "
                    "fingerprint mismatch), 3 broker connection lost.")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="broker address to join")
    p.add_argument("--heartbeat", type=float, default=0.5, metavar="SECONDS",
                   help="keepalive interval before the broker names one "
                        "(default 0.5)")

    p = sub.add_parser(
        "lint",
        help="statically lint the generated protocol artifacts",
        description="Run the repro.analysis passes over generated compound "
                    "protocols -- no simulation involved.  Exit codes: 0 "
                    "clean, 1 findings, 2 internal error.")
    p.add_argument("--pair", action="append", metavar="LOCAL:GLOBAL",
                   help="lint only this pairing, e.g. MESI:CXL (repeatable; "
                        "default: every registered pairing)")
    p.add_argument("--json", action="store_true",
                   help="emit the reports as JSON")
    p.add_argument("--strict", action="store_true",
                   help="fail on any finding, not just error severity")
    p.add_argument("--self-test", action="store_true",
                   help="also lint the injected-defect fixtures and verify "
                        "every rule fires")
    p.add_argument("--rules", action="store_true",
                   help="list the rule catalogue and exit")

    p = sub.add_parser(
        "check",
        help="exhaustively model-check one combo (sharded explorer)",
        description="Explore every message delivery order of one litmus "
                    "program on one protocol combo, checking runtime "
                    "invariants, deadlock-freedom and outcome soundness "
                    "against the axiomatic model.  Counterexamples are "
                    "deduplicated, shrunk to a minimal delivery prefix and "
                    "replayable (--ce-out).  Exit codes: 0 verified, 1 "
                    "counterexamples found or search truncated, 2 bad "
                    "usage or internal error.")
    p.add_argument("--combo", type=_parse_combo,
                   default=("MESI", "CXL", "MESI"),
                   help="protocol combo, L:G:L or L-G-L "
                        "(default MESI:CXL:MESI)")
    p.add_argument("--litmus", default="MP", metavar="NAME",
                   help="builtin litmus program to check (default MP; "
                        "see `repro list`)")
    p.add_argument("--mcms", type=_parse_mcms, default=("SC", "SC"),
                   help="per-cluster memory models (default SC,SC -- "
                        "exhaustive exploration is about orderings, not "
                        "timing)")
    p.add_argument("--depth", type=int, default=0, metavar="N",
                   help="delivery-path depth cap (0 = unlimited)")
    p.add_argument("--max-states", type=int, default=200_000, metavar="N",
                   help="state cap; a capped run exits 1 as inconclusive "
                        "(0 = unlimited, default 200000)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the state space by fingerprint into N "
                        "shards (default 1; use >= 2x the worker count "
                        "for parallelism)")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep raw counterexample paths (skip ddmin)")
    p.add_argument("--ce-out", metavar="DIR", default=None,
                   help="write counterexample JSON fixtures into DIR")
    p.add_argument("--json", action="store_true",
                   help="emit the verdict as JSON")
    _add_jobs_flag(p)
    _add_backend_flag(p)
    _add_progress_flag(p)
    _add_telemetry_flags(p)

    p = sub.add_parser(
        "metrics-server",
        help="serve a telemetry snapshot as Prometheus /metrics",
        description="Serve /metrics (Prometheus text exposition, re-read "
                    "from the snapshot file on every scrape) and /healthz "
                    "over plain HTTP using only the standard library.  "
                    "Accepts a --telemetry-json fleet dump, a trace "
                    "--metrics dump, or a bare registry snapshot.  Exit "
                    "codes: 0 clean shutdown (Ctrl-C), 2 bad snapshot or "
                    "bind failure.")
    p.add_argument("--snapshot", required=True, metavar="FILE",
                   help="telemetry JSON file to expose")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=9108,
                   help="bind port (default 9108; 0 = ephemeral)")

    p = sub.add_parser(
        "bench",
        help="benchmark trajectory tools (see `bench report`)")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "report",
        help="latest-vs-previous deltas across BENCH_*.json",
        description="Read every BENCH_*.json trajectory, print the delta "
                    "between the two most recent records per file and flag "
                    "directional fields that regressed beyond the "
                    "threshold.  Exit codes: 0 no regressions, 1 "
                    "regressions flagged, 2 unreadable trajectory.")
    p.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                   help="worse-direction percentage that counts as a "
                        "regression (default 10)")
    p.add_argument("--dir", default=".", metavar="DIR",
                   help="directory holding the BENCH_*.json files "
                        "(default .)")

    from repro.scenario.cli import add_scenario_parser

    add_scenario_parser(sub)

    p = sub.add_parser("slicc", help="dump a generated compound controller")
    p.add_argument("local", help="local protocol (MESI, MESIF, MOESI, RCC; "
                                 "case-insensitive)")
    p.add_argument("global_", metavar="global",
                   help="global protocol (CXL or MESI; case-insensitive)")
    p.add_argument("--table", action="store_true",
                   help="print the translation table instead")

    sub.add_parser("list", help="list workloads and litmus tests")
    return parser


def _parse_lint_pair(text: str) -> tuple[str, str]:
    parts = text.split(":")
    if len(parts) != 2 or not all(parts):
        raise ValueError(f"--pair must look like MESI:CXL, got {text!r}")
    return (parts[0], parts[1])


def _cmd_lint(args) -> int:
    """``repro lint``: run the static protocol linter (exit 0/1/2)."""
    import json

    from repro.analysis import ProtocolLinter, registered_pairs
    from repro.errors import ProtocolError

    linter = ProtocolLinter()
    if args.rules:
        for rule_id, (pass_name, description) in linter.rules().items():
            print(f"{rule_id}  {pass_name:<13} {description}")
        return 0
    try:
        pairs = ([_parse_lint_pair(text) for text in args.pair]
                 if args.pair else registered_pairs())
        reports = []
        for local_name, global_name in pairs:
            reports.append(linter.lint_pair(local_name, global_name))
        self_test_results = None
        if args.self_test:
            from repro.analysis.fixtures import self_test

            self_test_results = self_test(linter)
    except (ProtocolError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # internal linter failure, not a finding
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    failed = any(not report.clean(strict=args.strict) for report in reports)
    missed_rules = sorted(
        rule for rule, fired in (self_test_results or {}).items() if not fired)
    if args.json:
        payload = {
            "reports": [report.to_dict() for report in reports],
            "findings": sum(len(r.findings) for r in reports),
            "clean": not failed,
        }
        if self_test_results is not None:
            payload["self_test"] = self_test_results
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.format())
        if self_test_results is not None:
            fired = sum(self_test_results.values())
            print(f"self-test: {fired}/{len(self_test_results)} rules fire "
                  "on their injected-defect fixtures")
            for rule in missed_rules:
                print(f"  MISSED: {rule}")
    return 1 if (failed or missed_rules) else 0


def _cmd_check(args) -> int:
    """``repro check``: sharded exhaustive model check (exit 0/1/2)."""
    import json
    import os

    from repro.errors import ProtocolError
    from repro.obs.metrics import MetricsRegistry
    from repro.verify.axiomatic import enumerate_outcomes
    from repro.verify.litmus import LITMUS_BY_NAME
    from repro.verify.mc import ModelChecker, litmus_model

    if args.litmus not in LITMUS_BY_NAME:
        print(f"unknown litmus test {args.litmus!r}; see `repro list`",
              file=sys.stderr)
        return 2
    test = LITMUS_BY_NAME[args.litmus]
    try:
        model = litmus_model(args.litmus, args.combo, args.mcms)
        thread_mcms = [args.mcms[tid % 2] for tid in range(test.num_threads)]
        allowed = enumerate_outcomes(
            list(model.programs), thread_mcms, test.observed_addrs)
    except (ProtocolError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def report_wave(rounds: int, states: int) -> None:
        print(f"[mc] wave {rounds}: {states} states", file=sys.stderr)

    metrics = MetricsRegistry()
    backend = _resolve_cli_backend(args)
    checker_kwargs = {}
    if _wants_telemetry(args) and hasattr(backend, "fleet"):
        # Telemetry exports need frames from real workers, but small
        # models keep every wave under the INLINE_WAVE fast path and
        # the fleet never spins up.  Force multi-shard waves through
        # the backend: a complete fleet view is worth the wall time
        # the inline shortcut would have saved.
        checker_kwargs["inline_wave"] = 1
    try:
        checker = ModelChecker(
            model, shards=args.shards,
            backend=backend or "serial",
            max_states=args.max_states, max_depth=args.depth,
            metrics=metrics, shrink=not args.no_shrink,
            **checker_kwargs)
        result = checker.run(progress=report_wave if args.progress else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Outcome soundness: every terminal outcome the implementation can
    # produce must be allowed by the compound axiomatic model.
    escaped = sorted(result.outcomes - set(allowed))
    forbidden = sorted(o for o in result.outcomes
                       if test.matches_forbidden(dict(o)))
    verified = result.ok and not escaped and not forbidden

    if args.ce_out and result.counterexamples:
        os.makedirs(args.ce_out, exist_ok=True)
        combo_tag = "-".join(model.combo)
        for index, ce in enumerate(result.counterexamples):
            path = os.path.join(
                args.ce_out, f"ce-{args.litmus}-{combo_tag}-{index}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(ce.to_json())
                handle.write("\n")

    if args.json:
        payload = result.to_dict()
        payload["litmus"] = args.litmus
        payload["mcms"] = list(args.mcms)
        payload["allowed_outcomes"] = len(allowed)
        payload["escaped_outcomes"] = [
            [list(pair) for pair in outcome] for outcome in escaped]
        payload["forbidden_outcomes"] = [
            [list(pair) for pair in outcome] for outcome in forbidden]
        payload["verified"] = verified
        payload["metrics"] = metrics.counter_values("mc.")
        print(json.dumps(payload, indent=2, sort_keys=True))
        telemetry_rc = _write_telemetry_outputs(args, backend)
        return telemetry_rc or (0 if verified else 1)

    mark = ("verified" if verified
            else "INCONCLUSIVE" if result.truncated
            and not (result.counterexamples or escaped or forbidden)
            else "FAILED")
    print(f"{args.litmus} on {'-'.join(model.combo)} "
          f"({'/'.join(args.mcms)}): {mark}")
    print(f"  states    : {result.states} ({result.terminals} terminal, "
          f"depth {result.max_depth}, {result.replays} replays)")
    print(f"  search    : {result.shards} shard(s), {result.rounds} "
          f"round(s), backend {result.backend}, {result.elapsed:.2f}s")
    print(f"  outcomes  : {len(result.outcomes)} observed / "
          f"{len(allowed)} allowed by the axiomatic model")
    if result.truncated:
        cap = (f"{args.max_states} states" if args.max_states else
               f"depth {args.depth}")
        print(f"  truncated : search capped at {cap}; "
              "the verdict proves nothing beyond the cap")
    for outcome in escaped:
        print(f"  ESCAPED   : {dict(outcome)} not allowed by the "
              "axiomatic model")
    for outcome in forbidden:
        print(f"  FORBIDDEN : {dict(outcome)} matches the litmus "
              "forbidden pattern")
    shown = result.counterexamples[:5]
    for ce in shown:
        print(f"  CE        : {ce.describe()}")
    hidden = len(result.counterexamples) - len(shown)
    if hidden > 0:
        print(f"  ... and {hidden} more counterexample(s)"
              + (f"; fixtures in {args.ce_out}" if args.ce_out else ""))
    telemetry_rc = _write_telemetry_outputs(args, backend)
    return telemetry_rc or (0 if verified else 1)


def _print_cell_rollups(result) -> None:
    """Print one compact ``[obs]`` line per sweep cell rollup, if any."""
    rollups = getattr(result, "cell_metrics", None)
    if not rollups:
        return
    from repro.obs import compact_obs

    for key in sorted(rollups, key=str):
        print(f"[obs] {key}: {compact_obs(rollups[key])}")


def _cmd_trace(args) -> int:
    """``repro trace``: one instrumented run with exporters (exit 0/1/2)."""
    import json

    from repro.obs import Observability, summarize_obs, write_chrome_trace
    from repro.sim.config import two_cluster_config
    from repro.sim.system import build_system
    from repro.sim.trace import MessageTracer
    from repro.stats.export import merge_obs
    from repro.workloads import WORKLOADS

    if args.name not in WORKLOADS:
        print(f"unknown workload {args.name!r}; see `repro list`",
              file=sys.stderr)
        return 2
    local_a, global_protocol, local_b = args.combo
    config = two_cluster_config(
        local_a, global_protocol, local_b,
        mcm_a=args.mcms[0], mcm_b=args.mcms[1],
        cores_per_cluster=args.cores, seed=args.seed,
    )
    system = build_system(config)
    obs = Observability(sample_engine=args.sample_engine).attach(system)
    tracer = None
    if args.addr is not None:
        tracer = MessageTracer(system.network, addrs=[args.addr])
    programs = WORKLOADS[args.name].build(
        config.total_cores, scale=args.scale, seed=args.seed)
    result = system.run_threads(programs)
    merge_obs(result, obs)

    print(f"{args.name} on {'-'.join(args.combo)} ({'/'.join(args.mcms)}):")
    print(f"  execution time : {result.exec_ns:,.0f} ns")
    print(f"  ops            : {result.stats.ops} "
          f"({result.stats.misses} misses)")
    print(f"  messages       : {result.messages}")
    print(summarize_obs(result.extra["obs"]))
    if tracer is not None and tracer.dropped:
        print(f"  message trace truncated: {tracer.dropped} dropped")
    if args.chrome_trace:
        from repro.obs import TraceValidationError

        try:
            count = write_chrome_trace(args.chrome_trace, obs.recorder,
                                       tracer)
        except TraceValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            for problem in exc.problems[:10]:
                print(f"  - {problem}", file=sys.stderr)
            return 2
        print(f"wrote {count} trace events to {args.chrome_trace}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(result.extra["obs"], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics dump to {args.metrics}")
    return 1 if result.extra["obs"]["rule2"]["violations"] else 0


def _cmd_metrics_server(args) -> int:
    """``repro metrics-server``: serve a snapshot file (exit 0/2)."""
    from repro.obs.prom import (fleet_to_prometheus, load_snapshot_file,
                                make_metrics_server)

    def exposition() -> str:
        """Re-read the snapshot file and render it (fresh per scrape)."""
        snapshot, per_worker = load_snapshot_file(args.snapshot)
        return fleet_to_prometheus(snapshot, per_worker)

    try:
        exposition()  # fail fast on an unreadable/ill-shaped snapshot
        server = make_metrics_server(args.host, args.port, exposition)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"serving /metrics and /healthz on http://{host}:{port}/ "
          f"from {args.snapshot} (Ctrl-C to stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    command = args.command

    if command == "tables":
        from repro.harness.tables import table1, table2, table3

        print(table1())
        print()
        print(table2())
        print()
        print(table3())
        return 0

    if command == "worker":
        from repro.harness.dist.worker import parse_address, run_worker

        try:
            address = parse_address(args.connect)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return run_worker(address, heartbeat_interval=args.heartbeat)

    if command == "table4":
        from repro.harness.experiments import table4

        result = table4(runs=args.runs, jobs=args.jobs,
                        backend=_resolve_cli_backend(args),
                        progress=_progress_printer if args.progress else None)
        print(result.format())
        return 0 if result.all_passed() else 1

    if command == "litmus":
        from repro.verify.litmus import LITMUS_BY_NAME
        from repro.verify.runner import run_litmus

        if args.file:
            from repro.verify.litmus_format import loads

            with open(args.file) as handle:
                test = loads(handle.read())
        else:
            if args.name is None:
                print("provide a builtin test name or --file", file=sys.stderr)
                return 2
            test = LITMUS_BY_NAME.get(args.name)
            if test is None:
                print(f"unknown litmus test {args.name!r}; try: "
                      + ", ".join(LITMUS_BY_NAME), file=sys.stderr)
                return 2
        result = run_litmus(test, combo=args.combo, mcms=args.mcms,
                            runs=args.runs, sync=not args.no_sync)
        print(result.summary())
        for outcome, count in sorted(result.observed.items()):
            pretty = ", ".join(f"{k}={v}" for k, v in outcome)
            mark = ""
            if test.matches_forbidden(dict(outcome)):
                mark = "  <-- forbidden"
            elif outcome not in result.allowed:
                mark = "  <-- NOT ALLOWED"
            print(f"  {count:5d}x  {pretty}{mark}")
        return 0 if result.passed or args.no_sync else 1

    if command == "workload":
        from repro.harness.experiments import run_workload
        from repro.stats.collectors import LATENCY_BINS
        from repro.workloads import WORKLOADS

        if args.name not in WORKLOADS:
            print(f"unknown workload {args.name!r}; see `repro list`",
                  file=sys.stderr)
            return 2
        profile_top = args.profile
        if args.profile_out is not None and profile_top is None:
            profile_top = 25
        profiler = None
        if profile_top is not None:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        result = run_workload(args.name, combo=args.combo, mcms=args.mcms,
                              cores_per_cluster=args.cores,
                              scale=args.scale, seed=args.seed, obs=args.obs)
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler)
            if args.profile_out:
                stats.dump_stats(args.profile_out)
                print(f"pstats dump written to {args.profile_out}",
                      file=sys.stderr)
            stats.sort_stats("cumulative").print_stats(profile_top)
        print(f"{args.name} on {'-'.join(args.combo)} ({'/'.join(args.mcms)}):")
        print(f"  execution time : {result.exec_ns:,.0f} ns")
        print(f"  ops            : {result.stats.ops} "
              f"({result.stats.misses} misses)")
        print(f"  messages       : {result.messages}")
        print(f"  BIConflicts    : {result.extra['conflicts']}")
        print(f"  DCOH queueing  : {result.extra['home_queued']} requests")
        for bin_name, _bound in LATENCY_BINS:
            print(f"  {bin_name:>6} miss cycles: "
                  f"{result.stats.miss_cycles(bin_name=bin_name):,}")
        if args.obs:
            from repro.obs import summarize_obs

            print(summarize_obs(result.extra["obs"]))
        return 0

    if command == "trace":
        return _cmd_trace(args)

    if command == "fig9":
        from repro.harness.experiments import figure9

        backend = _resolve_cli_backend(args)
        result = figure9(
            workloads_per_suite=args.per_suite, jobs=args.jobs, obs=args.obs,
            backend=backend,
            progress=_progress_printer if args.progress else None)
        print(result.format())
        _print_cell_rollups(result)
        return _write_telemetry_outputs(args, backend)

    if command == "fig10":
        from repro.harness.experiments import figure10

        backend = _resolve_cli_backend(args)
        result = figure10(
            workloads=args.workloads or None, jobs=args.jobs, obs=args.obs,
            backend=backend,
            progress=_progress_printer if args.progress else None)
        print(result.format())
        _print_cell_rollups(result)
        return _write_telemetry_outputs(args, backend)

    if command == "fig11":
        from repro.harness.experiments import figure11

        from repro.harness.experiments import FIG11_WORKLOADS

        backend = _resolve_cli_backend(args)
        result = figure11(
            workloads=tuple(args.workloads) if args.workloads
            else FIG11_WORKLOADS,
            jobs=args.jobs, obs=args.obs,
            backend=backend,
            progress=_progress_printer if args.progress else None)
        print(result.format())
        _print_cell_rollups(result)
        return _write_telemetry_outputs(args, backend)

    if command == "metrics-server":
        return _cmd_metrics_server(args)

    if command == "bench":
        from repro.harness.bench_report import bench_report

        try:
            text, regressions = bench_report(root=args.dir,
                                             threshold=args.threshold)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return 1 if regressions else 0

    if command == "lint":
        return _cmd_lint(args)

    if command == "check":
        return _cmd_check(args)

    if command == "scenario":
        from repro.scenario.cli import cmd_scenario

        return cmd_scenario(args)

    if command == "slicc":
        from repro.core.generator import generate
        from repro.core.slicc import emit
        from repro.core.translation import format_table
        from repro.errors import ProtocolError

        try:
            compound = generate(args.local, args.global_)
        except ProtocolError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.table:
            print(format_table(compound.rows,
                               title=f"C3 translation table ({compound.name})"))
        else:
            print(emit(compound))
        return 0

    if command == "list":
        from repro.verify.litmus import LITMUS_BY_NAME
        from repro.workloads import SUITES, workload_names

        for suite in SUITES:
            print(f"{suite}: " + ", ".join(workload_names(suite)))
        print("litmus: " + ", ".join(LITMUS_BY_NAME))
        return 0

    raise AssertionError(command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
