"""C3: CXL Coherence Controllers for Heterogeneous Architectures.

A complete Python reproduction of the HPCA 2026 paper.  The package
contains:

- :mod:`repro.sim` -- a discrete-event, message-granularity simulator
  substrate (the gem5/Ruby/Garnet substitute): event engine, interconnect
  topologies, cache arrays, L1 controllers, memory controllers and system
  builders.
- :mod:`repro.cpu` -- micro-ops, thread programs and memory-consistency
  model engines (SC, TSO, ARM-style weak ordering, RCC synchronization).
- :mod:`repro.protocols` -- executable directory-based coherence protocol
  engines: the MESI family (MESI, MESIF, MOESI), RCC, the hierarchical
  global MESI baseline and the CXL.mem 3.0 protocol with the
  BIConflict/BIConflictAck race-resolution handshake.
- :mod:`repro.core` -- the paper's contribution: stable-state protocol
  specifications, the compound-FSM generator implementing Rule I (flow
  delegation) and Rule II (atomicity), translation tables, and the C3
  bridge runtime.
- :mod:`repro.verify` -- invariant monitors, an explicit-state
  (Murphi-like) model-checking explorer, litmus tests with axiomatic
  allowed-outcome enumeration and the randomized litmus runner.
- :mod:`repro.workloads` -- 33 synthetic kernels mirroring the sharing
  behaviour of Splash-4, PARSEC and Phoenix.
- :mod:`repro.stats` and :mod:`repro.harness` -- measurement collectors
  and the experiment drivers that regenerate every table and figure of
  the paper's evaluation.
"""

from repro.sim.config import ClusterConfig, SystemConfig, two_cluster_config
from repro.sim.system import System, build_system
from repro.cpu.isa import (
    Op,
    ThreadProgram,
    fence,
    load,
    load_acquire,
    rmw,
    store,
    store_release,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "SystemConfig",
    "two_cluster_config",
    "System",
    "build_system",
    "Op",
    "ThreadProgram",
    "fence",
    "load",
    "load_acquire",
    "rmw",
    "store",
    "store_release",
    "__version__",
]
